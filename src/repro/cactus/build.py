"""Cactus construction: preprocess, enumerate every minimum cut, recurse.

The pipeline (Noe, "Algorithm Engineering for Cut Problems"; HNSS §3):

1. **Contraction-safe preprocessing.**  Run CAPFOREST with the *fixed*
   bound ``λ̂ = λ + 1`` and contract every marked edge.  A marked edge
   ``e`` certifies ``λ(G, e) ≥ λ + 1 > λ`` (HNSS Lemma 3.2 with a strict
   threshold), so its endpoints lie on the same side of **every** cut of
   value ``≤ λ`` — unlike the solver's usual ``λ̂ = λ`` marking, which
   only promises to keep *some* minimum cut alive.  Iterated to a
   fixpoint this shrinks the graph without losing a single minimum cut.

2. **Exhaustive enumeration on the contracted graph.**  Every global
   minimum cut separates vertex 0 from some ``t``, and any such cut is a
   minimum ``(0, t)``-cut (its value λ cannot exceed the s-t cut value,
   which cannot be below the global minimum).  For each ``t`` whose
   max-flow value equals λ we enumerate **all** minimum s-t cuts à la
   Picard–Queyranne: the s-sides are exactly the residual-successor-closed
   vertex sets, i.e. closed unions of SCCs of the residual digraph.  The
   union over ``t`` (deduplicated) is the complete family of minimum
   cuts — at most :math:`\\binom{n}{2}` of them, so output-polynomial.

3. **Recursive cactus assembly from the explicit family.**  Crossing
   cuts are grouped into components; a component of crossing cuts spans a
   circular partition whose consecutive runs are exactly the component's
   cuts plus the single-atom cuts (Dinitz–Karzanov–Lomonosov), giving a
   cactus *cycle*; a non-crossing cut gives a *tree edge*.  Every other
   cut nests inside exactly one atom and is pushed into the recursive
   subproblem for that atom, with a super-vertex standing in for the rest
   of the world; the cactus node that ends up holding the super-vertex is
   where the atom's sub-cactus attaches to the structure.
"""

from __future__ import annotations

import time
from collections import deque

import numpy as np

from ..baselines.push_relabel import max_flow, reverse_arcs
from ..core.capforest import capforest
from ..graph import connected_components, contract_by_union_find
from ..graph.contract import compose_labels
from ..graph.csr import Graph
from .cactus import Cactus, CactusError

__all__ = ["build_cactus"]


# ---------------------------------------------------------------------------
# step 1: contraction preserving all minimum cuts
# ---------------------------------------------------------------------------

def _preprocess(graph: Graph, lam: int) -> tuple[Graph, np.ndarray, int]:
    """Contract to a fixpoint without destroying any cut of value <= lam.

    Returns ``(contracted_graph, labels, passes)`` with ``labels`` mapping
    original vertices to contracted ids.
    """
    h = graph
    labels = np.arange(graph.n, dtype=np.int64)
    passes = 0
    while h.n > 2:
        res = capforest(h, lam + 1, fixed_bound=True, start=0, rng=0)
        h2, inner = contract_by_union_find(h, res.uf)
        passes += 1
        if h2.n == h.n:
            break
        labels = compose_labels(labels, inner)
        h = h2
    return h, labels, passes


# ---------------------------------------------------------------------------
# step 2: enumerate every minimum cut of the contracted graph
# ---------------------------------------------------------------------------

def _residual_scc(n: int, src: list, dst: list, live: list) -> np.ndarray:
    """SCC labels of the digraph with arcs ``(src[i], dst[i])`` where
    ``live[i]``, via iterative Kosaraju (recursion-free)."""
    fwd: list[list[int]] = [[] for _ in range(n)]
    bwd: list[list[int]] = [[] for _ in range(n)]
    for i, alive in enumerate(live):
        if alive:
            fwd[src[i]].append(dst[i])
            bwd[dst[i]].append(src[i])

    order: list[int] = []
    seen = [False] * n
    for root in range(n):
        if seen[root]:
            continue
        # post-order via explicit stack of (vertex, next-child-index)
        seen[root] = True
        stack = [(root, 0)]
        while stack:
            v, i = stack[-1]
            if i < len(fwd[v]):
                stack[-1] = (v, i + 1)
                u = fwd[v][i]
                if not seen[u]:
                    seen[u] = True
                    stack.append((u, 0))
            else:
                stack.pop()
                order.append(v)

    comp = np.full(n, -1, dtype=np.int64)
    c = 0
    for root in reversed(order):
        if comp[root] >= 0:
            continue
        comp[root] = c
        dq = deque([root])
        while dq:
            v = dq.popleft()
            for u in bwd[v]:
                if comp[u] < 0:
                    comp[u] = c
                    dq.append(u)
        c += 1
    return comp


def _closed_sets(num_scc: int, succ: list[set[int]], mandatory: set[int],
                 forbidden: set[int]) -> list[frozenset[int]]:
    """All successor-closed SCC sets containing ``mandatory``, avoiding
    ``forbidden``."""
    pred: list[set[int]] = [set() for _ in range(num_scc)]
    for c, outs in enumerate(succ):
        for d in outs:
            pred[d].add(c)

    free = set(range(num_scc)) - mandatory - forbidden
    out: list[frozenset[int]] = []

    # Invariants that keep the two branches below sound: a mandatory SCC
    # never reaches a free one (mandatory is successor-closed) and a free
    # SCC never reaches a forbidden one (it would reach t and be forbidden
    # itself), so including a free SCC only ever forces other free SCCs,
    # and excluding one only ever drops other free SCCs.
    def descend(chosen: set[int], undecided: list[int]) -> None:
        if not undecided:
            out.append(frozenset(chosen))
            return
        c = undecided[0]
        # exclude c: every free SCC that reaches c must be excluded too
        dropped = {c}
        dq = deque([c])
        while dq:
            v = dq.popleft()
            for p in pred[v]:
                if p in free and p not in dropped:
                    dropped.add(p)
                    dq.append(p)
        descend(chosen, [u for u in undecided if u not in dropped])
        # include c: every free SCC that c reaches must be included too
        forced = {c}
        dq = deque([c])
        while dq:
            v = dq.popleft()
            for s in succ[v]:
                if s in free and s not in forced:
                    forced.add(s)
                    dq.append(s)
        descend(chosen | forced, [u for u in undecided if u not in forced])

    descend(set(mandatory), sorted(free))
    return out


def _enumerate_min_cuts(h: Graph, lam: int) -> tuple[list[frozenset[int]], dict]:
    """All global minimum cuts of ``h`` as 0-free canonical sides.

    Each cut is returned as the frozenset of vertices on the side **not**
    containing vertex 0.
    """
    n = h.n
    rev = reverse_arcs(h)
    src = h.arc_sources().tolist()
    dst = h.adjncy.tolist()
    cap = h.adjwgt.tolist()
    m = len(dst)

    cuts: set[frozenset[int]] = set()
    flows = 0
    closures = 0
    for t in range(1, n):
        mf = max_flow(h, 0, t, rev=rev)
        flows += 1
        if int(mf.value) != lam:
            continue
        flow = mf.flow.tolist()
        live = [cap[i] - flow[i] > 0 for i in range(m)]
        comp = _residual_scc(n, src, dst, live)
        num_scc = int(comp.max()) + 1
        succ: list[set[int]] = [set() for _ in range(num_scc)]
        for i in range(m):
            if live[i] and comp[src[i]] != comp[dst[i]]:
                succ[comp[src[i]]].add(int(comp[dst[i]]))

        # mandatory: SCCs residual-reachable from 0 (closure of comp[0]);
        # forbidden: SCCs that reach comp[t] (their inclusion would force t)
        mandatory = {int(comp[0])}
        dq = deque(mandatory)
        while dq:
            c = dq.popleft()
            for s in succ[c]:
                if s not in mandatory:
                    mandatory.add(s)
                    dq.append(s)
        if comp[t] in mandatory:
            raise CactusError("sink residual-reachable from source at maxflow")
        pred_closure = {int(comp[t])}
        pred: list[set[int]] = [set() for _ in range(num_scc)]
        for c, outs in enumerate(succ):
            for d in outs:
                pred[d].add(c)
        dq = deque(pred_closure)
        while dq:
            c = dq.popleft()
            for p in pred[c]:
                if p not in pred_closure:
                    pred_closure.add(p)
                    dq.append(p)

        scc_members: list[list[int]] = [[] for _ in range(num_scc)]
        for v in range(n):
            scc_members[comp[v]].append(v)
        for closed in _closed_sets(num_scc, succ, mandatory, pred_closure):
            closures += 1
            s_side = [v for c in closed for v in scc_members[c]]
            # canonical side: the one NOT containing vertex 0
            cuts.add(frozenset(range(n)) - frozenset(s_side))
    stats = {"maxflows": flows, "closures": closures}
    return sorted(cuts, key=lambda s: (len(s), sorted(s))), stats


# ---------------------------------------------------------------------------
# step 3: recursive cactus assembly from an explicit cut family
# ---------------------------------------------------------------------------

def _crossing(a: frozenset, b: frozenset) -> bool:
    """Do cuts with canonical (anchor-free) sides ``a``/``b`` cross?

    Both sides exclude the anchor vertex, so the fourth corner of the
    crossing diagram (outside both) always holds the anchor; the cuts
    cross iff the other three corners are non-empty.
    """
    return bool(a & b) and bool(a - b) and bool(b - a)


def _canonical(side: frozenset, ground: frozenset, anchor) -> frozenset:
    return ground - side if anchor in side else side


def _circular_order(atoms: list[frozenset], comp_cuts: list[frozenset]) -> list[int]:
    """Recover the circular order of ``atoms`` from a crossing component.

    With the *complete* family of minimum cuts in hand, a crossing
    component consists of exactly the consecutive runs of circular length
    ``2..k-2`` of its circular partition, so the number of component cuts
    separating two atoms at circular distance ``d`` is ``d(k-d) - 2`` —
    strictly minimal (``k - 3``) exactly for adjacent atoms when
    ``k >= 4``.  Adjacency pairs must then chain into one Hamiltonian
    cycle.
    """
    k = len(atoms)
    if k < 4:
        raise CactusError(f"crossing component spans only {k} atoms")
    sep = [[0] * k for _ in range(k)]
    for cut in comp_cuts:
        inside = [i for i, a in enumerate(atoms) if a <= cut]
        outside = [i for i in range(k) if i not in inside]
        for i in inside:
            for j in outside:
                sep[i][j] += 1
                sep[j][i] += 1
    neighbors: list[list[int]] = []
    for i in range(k):
        m = min(sep[i][j] for j in range(k) if j != i)
        if m != k - 3:
            raise CactusError("separation counts do not match a circular partition")
        neighbors.append([j for j in range(k) if j != i and sep[i][j] == m])
    if any(len(nb) != 2 for nb in neighbors):
        raise CactusError("atom adjacency is not 2-regular")
    order = [0, neighbors[0][0]]
    while len(order) < k:
        a, b = neighbors[order[-1]]
        nxt = b if a == order[-2] else a
        if nxt in order:
            raise CactusError("atom adjacency does not form one cycle")
        order.append(nxt)
    if order[0] not in neighbors[order[-1]]:
        raise CactusError("atom adjacency does not close a cycle")
    return order


def _runs_of(order: list[int], atoms: list[frozenset]) -> set[frozenset]:
    """Vertex sides of every consecutive run (length 1..k-1) of a circular
    order, each as the union of its atoms."""
    k = len(order)
    runs: set[frozenset] = set()
    for start in range(k):
        acc: set = set()
        for length in range(1, k):
            acc |= atoms[order[(start + length - 1) % k]]
            runs.add(frozenset(acc))
    return runs


def _build_recursive(ground: frozenset, cuts: list[frozenset],
                     next_super: list[int]):
    """Build a cactus for ``ground`` representing exactly ``cuts``.

    ``cuts`` are canonical sides (not containing ``min(ground)``).  Returns
    ``(node_members, tree_edges, cycles)`` over local node ids; members may
    include negative super-vertex ids introduced by deeper recursions only
    transiently (they are stripped before returning).
    """
    if not cuts:
        return [sorted(ground)], [], []

    anchor = min(ground)
    # crossing components over the cut family
    k = len(cuts)
    comp_id = list(range(k))

    def find(x: int) -> int:
        while comp_id[x] != x:
            comp_id[x] = comp_id[comp_id[x]]
            x = comp_id[x]
        return x

    for i in range(k):
        for j in range(i + 1, k):
            if _crossing(cuts[i], cuts[j]):
                comp_id[find(i)] = find(j)
    components: dict[int, list[frozenset]] = {}
    for i in range(k):
        components.setdefault(find(i), []).append(cuts[i])

    # choose one component as this level's structure; the rest nest in
    # atoms.  Prefer the largest (a crossing component forms its cycle at
    # this level, letting the run-skip below absorb its single-atom cuts
    # instead of nesting them behind empty nodes).
    chosen = sorted(components.items(), key=lambda kv: (-len(kv[1]), kv[0]))[0][1]
    if len(chosen) == 1:
        side = chosen[0]
        atoms = [frozenset(ground - side), side]  # atom 0 holds the anchor
        cycle_order: list[int] | None = None
    else:
        # atoms = classes of identical membership across the component
        sig: dict[tuple[bool, ...], set] = {}
        for v in ground:
            sig.setdefault(tuple(v in c for c in chosen), set()).add(v)
        atoms = [frozenset(s) for s in sig.values()]
        cycle_order = _circular_order(atoms, chosen)
        runs = _runs_of(cycle_order, atoms)
        canon_runs = {_canonical(r, ground, anchor) for r in runs}
        if not set(chosen) <= canon_runs:
            raise CactusError("component cut is not a consecutive run")

    # assign every remaining cut to the unique atom containing one side;
    # a cut that is itself a run of the chosen cycle (the single-atom runs
    # live outside the crossing component) is already represented by an
    # adjacent cycle-edge pair and must not be nested again
    sub_cuts: list[set[frozenset]] = [set() for _ in atoms]
    for comp, members in components.items():
        if members is chosen:
            continue
        for cut in members:
            if cycle_order is not None and cut in canon_runs:
                continue
            placed = False
            for idx, atom in enumerate(atoms):
                if cut <= atom:
                    sub_cuts[idx].add(cut)
                    placed = True
                    break
                if (ground - cut) <= atom:
                    sub_cuts[idx].add(frozenset(ground - cut))
                    placed = True
                    break
            if not placed:
                raise CactusError("cut crosses the chosen component's atoms")

    # recurse per atom with a super-vertex standing in for the outside world
    node_members: list[list] = []
    tree_edges: list[tuple[int, int]] = []
    cycles: list[list[int]] = []
    attach: list[int] = []
    for idx, atom in enumerate(atoms):
        if not sub_cuts[idx]:
            node_members.append(sorted(atom))
            attach.append(len(node_members) - 1)
            continue
        super_v = next_super[0]
        next_super[0] -= 1
        sub_ground = atom | {super_v}
        sub_anchor = min(sub_ground)
        sides = {_canonical(c, sub_ground, sub_anchor) for c in sub_cuts[idx]}
        sub_nodes, sub_tree, sub_cycles = _build_recursive(
            sub_ground, sorted(sides, key=lambda s: (len(s), sorted(s))),
            next_super,
        )
        base = len(node_members)
        attach_local = None
        for ni, members in enumerate(sub_nodes):
            if super_v in members:
                members = [v for v in members if v != super_v]
                attach_local = ni
            node_members.append(sorted(members))
        if attach_local is None:
            raise CactusError("super-vertex vanished in recursion")
        tree_edges.extend((base + a, base + b) for a, b in sub_tree)
        cycles.extend([base + c for c in cyc] for cyc in sub_cycles)
        attach.append(base + attach_local)

    if cycle_order is None:
        tree_edges.append((attach[0], attach[1]))
    else:
        cycles.append([attach[i] for i in cycle_order])
    return node_members, tree_edges, cycles


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------

def build_cactus(graph: Graph, lam: int | None = None, *, tracer=None,
                 verify: bool = False) -> Cactus:
    """Construct the cactus of all minimum cuts of ``graph``.

    Parameters
    ----------
    lam:
        The known minimum cut value; computed with the default exact
        solver when omitted.
    tracer:
        Optional :class:`repro.observability.Tracer`; emits
        ``cactus_build_start`` / ``cactus_build_end``.
    verify:
        Cross-check that the cactus's structural cuts reproduce the
        enumerated family exactly (costs one full enumeration pass over
        the structure; used by tests).

    Notes
    -----
    On a disconnected graph (λ = 0) the cactus degenerates to a star over
    the connected components: it represents the component-isolating cuts,
    not all :math:`2^{k-1} - 1` unions of components (those are not
    expressible as a cactus; VieCut's construction assumes connectivity
    too).
    """
    n = graph.n
    if n < 2:
        raise ValueError(f"cactus requires at least 2 vertices, got {n}")
    if lam is None:
        from ..core.api import minimum_cut  # deferred: api imports us

        lam = int(minimum_cut(graph).value)
    lam = int(lam)
    t0 = time.perf_counter()
    if tracer is not None:
        tracer.emit("cactus_build_start", n=n, m=graph.m, lam=lam)

    if lam == 0:
        num, comp_labels = connected_components(graph)
        members: list[list[int]] = [[] for _ in range(num)]
        for v in range(n):
            members[int(comp_labels[v])].append(v)
        members.append([])  # empty hub node
        hub = num
        cactus = Cactus(
            n, 0, members, [(i, hub) for i in range(num)], [],
            stats={"contracted_n": num, "capforest_passes": 0,
                   "maxflows": 0, "closures": 0,
                   "degenerate_disconnected": True},
        )
        cactus.stats["num_cuts"] = cactus.num_min_cuts()
        if tracer is not None:
            tracer.emit("cactus_build_end", n_contracted=num,
                        num_cuts=cactus.num_min_cuts(),
                        num_nodes=cactus.num_nodes,
                        num_cycles=0,
                        seconds=round(time.perf_counter() - t0, 6))
        return cactus

    h, labels, passes = _preprocess(graph, lam)
    cuts, enum_stats = _enumerate_min_cuts(h, lam)
    if not cuts:
        raise CactusError("no minimum cut found at the claimed value")

    ground = frozenset(range(h.n))
    sides = sorted(
        {_canonical(c, ground, 0) for c in cuts},
        key=lambda s: (len(s), sorted(s)),
    )
    node_members_h, tree_edges, cycles = _build_recursive(
        ground, sides, next_super=[-1]
    )

    # expand contracted ids back to original vertices
    by_h: list[list[int]] = [[] for _ in range(h.n)]
    for v in range(n):
        by_h[int(labels[v])].append(v)
    node_members = [
        sorted(v for hv in members for v in by_h[hv])
        for members in node_members_h
    ]

    cactus = Cactus(
        n, lam, node_members, tree_edges, cycles,
        stats={"contracted_n": h.n, "capforest_passes": passes,
               **enum_stats, "num_cuts": len(sides)},
    )
    if verify:
        want = set()
        for side in sides:
            mask = np.zeros(n, dtype=bool)
            for hv in side:
                mask[by_h[hv]] = True
            if mask[0]:
                mask = ~mask
            want.add(mask.tobytes())
        got = {m.tobytes() for m in cactus.cut_masks()}
        if got != want:
            raise CactusError(
                f"cactus represents {len(got)} cuts, enumeration found {len(want)}"
            )
    if tracer is not None:
        tracer.emit("cactus_build_end", n_contracted=h.n,
                    num_cuts=len(sides), num_nodes=cactus.num_nodes,
                    num_cycles=cactus.num_cycles,
                    seconds=round(time.perf_counter() - t0, 6))
    return cactus
