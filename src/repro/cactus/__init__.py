"""Cactus representation of all minimum cuts.

:func:`build_cactus` constructs the Dinitz–Karzanov–Lomonosov cactus of
every minimum cut (contraction-safe preprocessing + exhaustive min-s-t-cut
enumeration + recursive assembly); :class:`Cactus` is the picklable query
structure (``num_min_cuts``, cut enumeration, ``most_balanced_cut``,
``in_cut`` membership arrays).
"""

from .build import build_cactus
from .cactus import Cactus, CactusError

__all__ = ["Cactus", "CactusError", "build_cactus"]
