"""Flat-array addressable max-priority queues for the compiled tier.

Compiled twins of the three queue implementations in
:mod:`repro.datastructures` — BStack / BQueue (:mod:`~repro.datastructures.
bucket_pq`) and the bottom-up binary heap (:mod:`~repro.datastructures.
binary_heap`) — with every piece of state in preallocated int64 numpy
arrays so the whole queue lives inside ``@njit`` code.  Observable
behaviour (pop order, tie-breaking, and the Lemma 3.1 push / update /
skipped-update / pop counters) is bit-identical to the Python classes; the
kernel parity suite holds the proof.

Bucket representation
---------------------
The deque-of-each-bucket becomes an *append-only entry pool*
(``ev``/``enext``/``eprev``) threaded through per-bucket ``bhead``/
``btail`` lists.  Lazy deletion carries over unchanged: raising a key
appends a fresh entry and abandons the old one, which is recognised as
stale (``key[v] != bucket``) when a pop walks over it.  Entries are only
ever appended at the tail and detached at one end (head for BQueue, tail
for BStack), so the pool never needs free-list recycling; CAPFOREST pushes
each vertex at most once and raises at most once per scanned arc, so a
pool of ``n + m + 1`` entries can never overflow.

State is split into the array tuple from :func:`alloc_pq` plus an int64
scalar block ``sc`` (indices ``SC_*``) holding the top-bucket cursor, the
live size, the pool high-water mark, and the four operation counters.
"""

from __future__ import annotations

import numpy as np

from .jit import maybe_njit

#: queue codes shared by the capforest kernel and the parallel region step
PQ_BSTACK = 0
PQ_BQUEUE = 1
PQ_HEAP = 2

PQ_CODES = {"bstack": PQ_BSTACK, "bqueue": PQ_BQUEUE, "heap": PQ_HEAP}

# slots of the ``sc`` state-scalar array
SC_TOP = 0  # top-bucket cursor (bucket kinds; may overestimate, like _top)
SC_SIZE = 1  # live entries (== len(pq) of the Python classes)
SC_NENT = 2  # entry-pool high-water mark (bucket kinds)
SC_PUSHES = 3
SC_UPDATES = 4
SC_SKIPPED = 5
SC_POPS = 6
SC_LEN = 7

_EMPTY = np.empty(0, dtype=np.int64)


def alloc_pq(pq_code: int, n: int, bound: int, cap: int):
    """Allocate flat queue state: ``(key, ev, enext, eprev, bhead, btail,
    pos, heap, sc)``.

    Unused families get zero-length arrays so a single argument list serves
    all three kinds inside one jitted function.  ``bound`` is the Lemma 3.1
    clamp (``-1`` = unbounded, heap only); ``cap`` bounds the bucket entry
    pool (use ``n + m + 1`` for a CAPFOREST scan).
    """
    sc = np.zeros(SC_LEN, dtype=np.int64)
    sc[SC_TOP] = -1
    key = np.full(n, -1, dtype=np.int64)
    if pq_code == PQ_HEAP:
        pos = np.full(n, -1, dtype=np.int64)
        heap = np.empty(n, dtype=np.int64)
        return key, _EMPTY, _EMPTY, _EMPTY, _EMPTY, _EMPTY, pos, heap, sc
    ev = np.empty(cap, dtype=np.int64)
    enext = np.empty(cap, dtype=np.int64)
    eprev = np.empty(cap, dtype=np.int64)
    bhead = np.full(bound + 1, -1, dtype=np.int64)
    btail = np.full(bound + 1, -1, dtype=np.int64)
    return key, ev, enext, eprev, bhead, btail, _EMPTY, _EMPTY, sc


@maybe_njit
def _bucket_append(v, b, ev, enext, eprev, bhead, btail, sc):
    """Append one pool entry for ``v`` at the tail of bucket ``b``."""
    e = sc[SC_NENT]
    sc[SC_NENT] = e + 1
    ev[e] = v
    enext[e] = -1
    tail = btail[b]
    eprev[e] = tail
    if tail == -1:
        bhead[b] = e
    else:
        enext[tail] = e
    btail[b] = e


@maybe_njit
def _heap_sift_up(i, key, pos, heap):
    v = heap[i]
    kv = key[v]
    while i > 0:
        parent = (i - 1) >> 1
        p = heap[parent]
        if key[p] >= kv:
            break
        heap[i] = p
        pos[p] = i
        i = parent
    heap[i] = v
    pos[v] = i


@maybe_njit
def pq_insert(pq_code, bound, v, priority, key, ev, enext, eprev, bhead, btail, pos, heap, sc):
    """``insert_or_raise(v, priority)`` — event-for-event the Python classes."""
    if pq_code == PQ_HEAP:
        if bound < 0 or priority < bound:
            new = priority
        else:
            new = bound
        p = pos[v]
        if p == -1:
            key[v] = new
            hs = sc[SC_SIZE]
            heap[hs] = v
            pos[v] = hs
            sc[SC_SIZE] = hs + 1
            _heap_sift_up(hs, key, pos, heap)
            sc[SC_PUSHES] += 1
            return
        cur = key[v]
        if bound >= 0 and cur >= bound:
            sc[SC_SKIPPED] += 1  # Lemma 3.1: already at the clamp
            return
        if new <= cur:
            return
        key[v] = new
        _heap_sift_up(p, key, pos, heap)
        sc[SC_UPDATES] += 1
        return
    new = priority if priority < bound else bound
    cur = key[v]
    if cur == -1:
        key[v] = new
        _bucket_append(v, new, ev, enext, eprev, bhead, btail, sc)
        sc[SC_SIZE] += 1
        sc[SC_PUSHES] += 1
        if new > sc[SC_TOP]:
            sc[SC_TOP] = new
        return
    if cur >= bound:
        sc[SC_SKIPPED] += 1
        return
    if new <= cur:
        return
    key[v] = new  # the entry in bucket ``cur`` goes stale
    _bucket_append(v, new, ev, enext, eprev, bhead, btail, sc)
    sc[SC_UPDATES] += 1
    if new > sc[SC_TOP]:
        sc[SC_TOP] = new


@maybe_njit
def pq_pop(pq_code, key, ev, enext, eprev, bhead, btail, pos, heap, sc):
    """``pop_max()`` → the popped vertex (callers never need the key).

    Caller guarantees the queue is non-empty (``sc[SC_SIZE] > 0``).
    """
    if pq_code == PQ_HEAP:
        v = heap[0]
        pos[v] = -1
        # Wegener bottom-up deletion: walk the hole to a leaf along the
        # larger child, drop the displaced last element in, sift up
        size = sc[SC_SIZE] - 1
        sc[SC_SIZE] = size
        last = heap[size]
        if size > 0:  # hole == 0 < size, so the Python hole==size case is size==0
            i = 0
            while True:
                child = 2 * i + 1
                if child >= size:
                    break
                right = child + 1
                if right < size and key[heap[right]] > key[heap[child]]:
                    child = right
                heap[i] = heap[child]
                pos[heap[i]] = i
                i = child
            heap[i] = last
            pos[last] = i
            _heap_sift_up(i, key, pos, heap)
        sc[SC_POPS] += 1
        return v
    b = sc[SC_TOP]
    while True:
        if pq_code == PQ_BQUEUE:
            e = bhead[b]
        else:
            e = btail[b]
        if e == -1:
            b -= 1
            continue
        v = ev[e]
        if pq_code == PQ_BQUEUE:  # detach from the head
            nx = enext[e]
            bhead[b] = nx
            if nx == -1:
                btail[b] = -1
            else:
                eprev[nx] = -1
        else:  # detach from the tail
            pv = eprev[e]
            btail[b] = pv
            if pv == -1:
                bhead[b] = -1
            else:
                enext[pv] = -1
        if key[v] == b:  # live entry — stale ones are simply discarded
            break
    sc[SC_TOP] = b
    key[v] = -1
    sc[SC_SIZE] -= 1
    sc[SC_POPS] += 1
    return v


__all__ = [
    "PQ_BQUEUE",
    "PQ_BSTACK",
    "PQ_CODES",
    "PQ_HEAP",
    "SC_LEN",
    "SC_NENT",
    "SC_POPS",
    "SC_PUSHES",
    "SC_SIZE",
    "SC_SKIPPED",
    "SC_TOP",
    "SC_UPDATES",
    "alloc_pq",
    "pq_insert",
    "pq_pop",
]
