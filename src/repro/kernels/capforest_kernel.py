"""Compiled CAPFOREST: the full sequential scan and the per-pop region step.

:func:`capforest_scan` is a line-for-line transcription of
``repro.core.capforest._capforest_scalar`` — same NOI mark rule
``r(y) < λ̂ ≤ r(y) + c(e)``, same α/prefix bookkeeping, same ``scan_all``
restarts (each registering the crossing-free cut α = 0), same queue event
sequence via :mod:`.flat_pq` — so every observable output (λ̂, marks, scan
order, pq counters) is bit-identical to ``kernel="scalar"``.  The one
structural difference is that mark events are buffered into flat pair
arrays and merged by the caller with ``UnionFind.union_pairs`` (union
order never changes the partition), exactly as the vector kernel does.

:func:`region_relax` is the arc loop of one *parallel* worker pop
(``repro.core.parallel_capforest._region_worker_with_prefix``), factored
out so the Python-side generator keeps the pop / ``T``-claim / yield
interleaving — the part that must stay in Python for the round-robin
serial executor to be deterministic — while the per-arc work runs jitted.

Everything here depends only on numpy and :mod:`.jit` / :mod:`.flat_pq`,
never on :mod:`repro.core`, so the core modules can import the kernel
registry without a cycle.
"""

from __future__ import annotations

import numpy as np

from .flat_pq import SC_SIZE, alloc_pq, pq_insert, pq_pop
from .jit import maybe_njit

#: slots of the int64 ``out`` array filled by :func:`capforest_scan`
OUT_LAM = 0
OUT_MIN_ALPHA = 1  # -1 encodes "no proper prefix recorded" (None)
OUT_BEST_PREFIX = 2
OUT_N_SCANNED = 3
OUT_N_MARKED = 4
OUT_EDGES = 5
OUT_ERR = 6  # 1 = popped more than n vertices (corrupt queue state)
OUT_LEN = 7


@maybe_njit
def capforest_scan(
    xadj,
    adjncy,
    adjwgt,
    wdeg,
    lambda_hat,
    start,
    pq_code,
    bound,
    scan_all,
    fixed_bound,
    key,
    ev,
    enext,
    eprev,
    bhead,
    btail,
    pos,
    heap,
    sc,
    visited,
    r,
    scan_order,
    mark_u,
    mark_v,
    out,
):
    """One full sequential CAPFOREST pass over flat arrays.

    ``visited``/``r``/``scan_order``/``mark_u``/``mark_v``/``out`` are
    caller-allocated outputs (``mark_*`` sized m + 1: each undirected edge
    is scanned at most once, and at most once marked).
    """
    n = r.shape[0]
    lam = lambda_hat
    alpha = np.int64(0)
    min_alpha = np.int64(-1)
    n_scanned = 0
    best_prefix = 0
    n_marked = 0
    edges_scanned = 0

    pq_insert(pq_code, bound, start, 0, key, ev, enext, eprev, bhead, btail, pos, heap, sc)
    next_restart = 0
    while True:
        if sc[SC_SIZE] == 0:
            if not scan_all:
                break
            # queue drained with vertices left: the scanned/unscanned cut
            # has no crossing edges, i.e. α == 0 — a real cut of value 0
            while next_restart < n and visited[next_restart] == 1:
                next_restart += 1
            if next_restart == n:
                break
            if n_scanned > 0 and (min_alpha == -1 or min_alpha > 0):
                min_alpha = np.int64(0)
                best_prefix = n_scanned
                if not fixed_bound:
                    lam = np.int64(0)
            pq_insert(
                pq_code, bound, next_restart, 0,
                key, ev, enext, eprev, bhead, btail, pos, heap, sc,
            )

        x = pq_pop(pq_code, key, ev, enext, eprev, bhead, btail, pos, heap, sc)
        if n_scanned >= n:
            out[OUT_ERR] = 1
            break
        rx = r[x]
        alpha += wdeg[x] - 2 * rx
        visited[x] = 1
        scan_order[n_scanned] = x
        n_scanned += 1
        if n_scanned < n and (min_alpha == -1 or alpha < min_alpha):
            min_alpha = alpha
            best_prefix = n_scanned
            if not fixed_bound and alpha < lam:
                lam = alpha

        for i in range(xadj[x], xadj[x + 1]):
            y = adjncy[i]
            if visited[y] == 1:
                continue
            edges_scanned += 1
            ry = r[y]
            q = ry + adjwgt[i]
            if ry < lam and lam <= q:
                mark_u[n_marked] = x
                mark_v[n_marked] = y
                n_marked += 1
            r[y] = q
            pq_insert(pq_code, bound, y, q, key, ev, enext, eprev, bhead, btail, pos, heap, sc)

    out[OUT_LAM] = lam
    out[OUT_MIN_ALPHA] = min_alpha
    out[OUT_BEST_PREFIX] = best_prefix
    out[OUT_N_SCANNED] = n_scanned
    out[OUT_N_MARKED] = n_marked
    out[OUT_EDGES] = edges_scanned


@maybe_njit
def region_relax(
    x,
    lam,
    xadj,
    adjncy,
    adjwgt,
    dead,
    r,
    mark_buf,
    pq_code,
    bound,
    key,
    ev,
    enext,
    eprev,
    bhead,
    btail,
    pos,
    heap,
    sc,
):
    """Relax one popped vertex's arc slice for a parallel region worker.

    Mirrors the scalar worker's inner loop: arcs towards blacklisted or
    locally-visited heads are skipped (the shared table ``T`` is *not*
    consulted — Lemma 3.2(3) marks stay safe either way, and this matches
    the scalar/vector workers exactly).  Marked heads are written to
    ``mark_buf`` in arc order; the caller replays them through its
    ``union`` callable.  Returns ``(edges_scanned, n_marks)``.
    """
    edges = 0
    cnt = 0
    for i in range(xadj[x], xadj[x + 1]):
        y = adjncy[i]
        if dead[y] == 1:
            continue
        edges += 1
        ry = r[y]
        q = ry + adjwgt[i]
        if ry < lam and lam <= q:
            mark_buf[cnt] = y
            cnt += 1
        r[y] = q
        pq_insert(pq_code, bound, y, q, key, ev, enext, eprev, bhead, btail, pos, heap, sc)
    return edges, cnt


def alloc_scan_state(pq_code: int, n: int, num_arcs: int, bound: int):
    """Queue state plus output buffers for one :func:`capforest_scan` call.

    The entry pool holds ``n + m + 1`` entries (≤ one push per vertex plus
    ≤ one raise per scanned arc); the mark buffers hold ``m + 1`` pairs
    (≤ one mark per scanned undirected edge).
    """
    m = num_arcs // 2
    pq_state = alloc_pq(pq_code, n, bound, n + m + 1)
    visited = np.zeros(n, dtype=np.uint8)
    r = np.zeros(n, dtype=np.int64)
    scan_order = np.empty(n, dtype=np.int64)
    mark_u = np.empty(m + 1, dtype=np.int64)
    mark_v = np.empty(m + 1, dtype=np.int64)
    out = np.zeros(OUT_LEN, dtype=np.int64)
    return pq_state, visited, r, scan_order, mark_u, mark_v, out


def warmup_arrays():
    """A tiny triangle graph in CSR form, for :func:`repro.kernels.warmup`."""
    xadj = np.array([0, 2, 4, 6], dtype=np.int64)
    adjncy = np.array([1, 2, 0, 2, 0, 1], dtype=np.int64)
    adjwgt = np.array([1, 2, 1, 1, 2, 1], dtype=np.int64)
    wdeg = np.array([3, 2, 3], dtype=np.int64)
    return xadj, adjncy, adjwgt, wdeg


__all__ = [
    "OUT_BEST_PREFIX",
    "OUT_EDGES",
    "OUT_ERR",
    "OUT_LAM",
    "OUT_LEN",
    "OUT_MIN_ALPHA",
    "OUT_N_MARKED",
    "OUT_N_SCANNED",
    "alloc_scan_state",
    "capforest_scan",
    "region_relax",
    "warmup_arrays",
]
