"""Numba detection and the ``@maybe_njit`` decorator for the compiled tier.

The compiled kernels are authored as plain Python functions over int64
numpy arrays and wrapped with :func:`maybe_njit`:

* with numba importable, the wrapper is ``@njit(cache=True)`` — first call
  per process compiles (or loads the on-disk cache), later calls run
  machine code;
* without numba, the wrapper is the identity, so the module always imports
  and the *same* code path can still be executed as plain Python.

That second property is what makes the tier testable without the
dependency: setting ``REPRO_COMPILED_PUREPY=1`` (see
:func:`pure_python_forced`) makes ``repro.kernels.compiled_available()``
report the tier as runnable, so the parity suite exercises the compiled
kernels bit-for-bit even on numba-free machines — only slower.  The
environment variable (rather than a process-local flag) is deliberate:
spawn-method worker processes inherit it, so forced-mode parity covers the
process executors too.

Import failures are captured, never raised: a broken numba install (ABI
mismatch against the local numpy, for instance) degrades to the identity
decorator with the reason recorded in :data:`NUMBA_DISABLED_REASON`.
"""

from __future__ import annotations

import os
from typing import Any

#: True iff ``import numba`` succeeded at module load.
NUMBA_AVAILABLE = False

#: why numba is unusable (``None`` when :data:`NUMBA_AVAILABLE`)
NUMBA_DISABLED_REASON: str | None = None

try:  # pragma: no cover - taken only where the [compiled] extra is installed
    from numba import njit as _njit

    NUMBA_AVAILABLE = True
except Exception as exc:  # noqa: BLE001 - any import failure must degrade, not raise
    NUMBA_DISABLED_REASON = f"{type(exc).__name__}: {exc}"
    _njit = None

#: every dispatcher produced by :func:`maybe_njit`, for :func:`compile_count`
_JITTED: list[Any] = []


def pure_python_forced() -> bool:
    """True when ``REPRO_COMPILED_PUREPY`` forces the compiled tier to run
    its kernels as plain Python (parity testing without numba).

    Read per call, not at import, so tests can flip it with
    ``monkeypatch.setenv`` and forked/spawned workers see the same value.
    """
    return os.environ.get("REPRO_COMPILED_PUREPY", "") not in ("", "0")


def maybe_njit(func=None, **options):
    """``@njit(cache=True, **options)`` when numba imports, identity otherwise."""

    def wrap(f):
        if NUMBA_AVAILABLE:  # pragma: no cover - needs the [compiled] extra
            disp = _njit(cache=True, **options)(f)
            _JITTED.append(disp)
            return disp
        return f

    if func is not None:
        return wrap(func)
    return wrap


def compile_count() -> int:
    """Total signatures compiled (or cache-loaded) across all jitted kernels
    in this process; always 0 without numba.

    The JIT-warmup test uses this as its compile-count hook: after
    :func:`repro.kernels.warmup` the count is positive and *stays constant*
    across further solves — proving later requests skip compilation.
    """
    if not NUMBA_AVAILABLE:
        return 0
    return sum(len(d.signatures) for d in _JITTED)  # pragma: no cover


__all__ = [
    "NUMBA_AVAILABLE",
    "NUMBA_DISABLED_REASON",
    "compile_count",
    "maybe_njit",
    "pure_python_forced",
]
