"""Compiled (asynchronous) label propagation for VieCut clustering.

:func:`lp_round` is the jitted twin of one round of
``repro.viecut.label_propagation.propagate_labels`` — the *asynchronous*
reference engine: vertices are visited in the given order, each adopts the
neighbour label with the highest incident weight, ties keep the current
label, and updates are visible immediately.  The reference accumulates
gains in a dict whose iteration order is first-encounter order over the
arc slice; here that becomes a label-indexed gain array plus a ``touched``
stack recording first encounters, walked in the same order — so the
winning label (first strict maximum) is identical and
``propagate_labels_compiled`` (in :mod:`repro.viecut.label_propagation`)
is bit-equal to ``propagate_labels`` for every graph and seed.

Weights are positive integers (graph invariant), so ``gain[lab] == 0``
is exactly "label not yet touched this slice" and the reset loop restores
the zero state without an O(n) clear per vertex.
"""

from __future__ import annotations

from .jit import maybe_njit


@maybe_njit
def lp_round(xadj, adjncy, adjwgt, labels, order, gain, touched):
    """One asynchronous label-propagation round; returns #vertices moved.

    ``gain`` must be all-zeros on entry (it is restored before return);
    ``touched`` is an n-slot scratch stack.
    """
    changed = 0
    for idx in range(order.shape[0]):
        v = order[idx]
        lo = xadj[v]
        hi = xadj[v + 1]
        if lo == hi:
            continue  # isolated vertices keep their label
        nt = 0
        for i in range(lo, hi):
            lab = labels[adjncy[i]]
            if gain[lab] == 0:
                touched[nt] = lab
                nt += 1
            gain[lab] += adjwgt[i]
        own = labels[v]
        best = own
        best_gain = gain[own]  # 0 when own is not among the neighbour labels
        for t in range(nt):
            lab = touched[t]
            if gain[lab] > best_gain:  # strict: ties keep the earlier winner
                best = lab
                best_gain = gain[lab]
        for t in range(nt):
            gain[touched[t]] = 0
        if best != own:
            labels[v] = best
            changed += 1
    return changed


__all__ = ["lp_round"]
