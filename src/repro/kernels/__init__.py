"""Relaxation-kernel registry and the compiled execution tier.

This package is the single home of the kernel registry (:data:`KERNELS`,
:func:`check_kernel`) shared by ``capforest``, ``parallel_capforest``, the
CLI, and the API — previously each module referenced its own copy of the
tuple — plus the compiled tier itself:

``"scalar"``
    Reference kernel, one Python loop iteration per arc.
``"vector"``
    Numpy batch relaxation (PR 2).
``"compiled"``
    The modules in this package: numba ``@njit(cache=True)`` functions
    over flat int64 arrays for CAPFOREST relaxation (scalar-order
    semantics, bit-identical events), VieCut label propagation, and graph
    contraction, with the bucket/heap priority queues jitted alongside
    (:mod:`.flat_pq`) so the whole inner loop stays in machine code.

numba is an *optional* dependency (the ``[compiled]`` extra).  When it is
absent — or fails to import — the registry still advertises
``"compiled"``; :func:`resolve_kernel` degrades the request to
``"vector"`` and reports the reason, which drivers surface as a
``kernel_fallback`` trace event and ``kernel_fallback`` stats key.  The
``REPRO_COMPILED_PUREPY=1`` escape hatch (see :mod:`.jit`) instead runs
the compiled kernels as plain Python so parity is provable without the
dependency.

Per-tier batching crossovers live in :data:`KERNEL_CROSSOVERS`: the
vector tier's numpy-call amortization thresholds make no sense for
machine-code loops, so the compiled tier's thresholds collapse to
"always" (see the bench record's ``batch_crossovers`` block).
"""

from __future__ import annotations

import time
from typing import Any

from .jit import (
    NUMBA_AVAILABLE,
    NUMBA_DISABLED_REASON,
    compile_count,
    maybe_njit,
    pure_python_forced,
)

#: the kernel registry — the one source of truth for every ``kernel=`` arg
KERNELS = ("scalar", "vector", "compiled")

#: per-tier batching crossovers (measured on GNM instances; the bench
#: record republishes this block as ``batch_crossovers``).  ``min_batch``
#: is the smallest top-bucket drain worth batch bookkeeping;
#: ``pop_vector_min_degree`` the smallest arc slice worth a vectorized
#: single-pop relaxation.  The compiled tier relaxes arc-by-arc in machine
#: code with no per-call overhead to amortize, so both collapse to
#: "batching always allowed / never needed" (1 and 0).
KERNEL_CROSSOVERS: dict[str, dict[str, int]] = {
    "vector": {"min_batch": 16, "pop_vector_min_degree": 96},
    "compiled": {"min_batch": 1, "pop_vector_min_degree": 0},
}

#: what a ``"compiled"`` request runs as when the tier is unavailable
COMPILED_FALLBACK = "vector"

_WARMED = False
_WARMUP_SECONDS = 0.0


def check_kernel(kernel: str) -> str:
    """Validate a kernel name against the registry (shared error message)."""
    if kernel not in KERNELS:
        raise ValueError(f"unknown kernel {kernel!r}; expected one of {KERNELS}")
    return kernel


def compiled_available() -> bool:
    """Can ``kernel="compiled"`` actually execute the compiled code paths?

    True with numba importable, or with ``REPRO_COMPILED_PUREPY=1`` forcing
    the same kernels to run as plain Python (parity testing).
    """
    return NUMBA_AVAILABLE or pure_python_forced()


def resolve_kernel(kernel: str, tracer=None) -> tuple[str, str | None]:
    """Resolve a requested kernel to the one that will run.

    Returns ``(resolved, fallback_reason)`` — ``fallback_reason`` is
    ``None`` unless ``"compiled"`` was requested while unavailable, in
    which case the request degrades to :data:`COMPILED_FALLBACK` and one
    ``kernel_fallback`` trace event is emitted (when a tracer is given).
    Drivers resolve once at solve start and pass the resolved name down,
    so a multi-round solve emits at most one note.
    """
    check_kernel(kernel)
    if kernel != "compiled" or compiled_available():
        return kernel, None
    reason = NUMBA_DISABLED_REASON or "numba is not installed"
    note = f"compiled tier unavailable ({reason}); running {COMPILED_FALLBACK}"
    if tracer is not None:
        tracer.emit(
            "kernel_fallback",
            requested="compiled",
            resolved=COMPILED_FALLBACK,
            reason=note,
        )
    return COMPILED_FALLBACK, note


def warmup() -> float:
    """Compile (or cache-load) every jitted kernel against a tiny graph.

    Called once per pooled engine worker at startup so JIT cost is paid
    before the first request, and idempotent: the second call in a process
    returns immediately (the warmup test asserts :func:`compile_count`
    stays constant across it).  A no-op-ish plain-Python run when the tier
    is in forced pure-Python mode; returns the seconds spent.
    """
    global _WARMED, _WARMUP_SECONDS
    if _WARMED:
        return 0.0
    if not compiled_available():
        _WARMED = True
        return 0.0
    t0 = time.perf_counter()
    import numpy as np

    from .capforest_kernel import (
        alloc_scan_state,
        capforest_scan,
        region_relax,
        warmup_arrays,
    )
    from .contract_kernel import contract_arcs
    from .flat_pq import PQ_CODES
    from .lp_kernel import lp_round

    xadj, adjncy, adjwgt, wdeg = warmup_arrays()
    n = 3
    for code in PQ_CODES.values():
        pq_state, visited, r, scan_order, mark_u, mark_v, out = alloc_scan_state(
            code, n, len(adjncy), 2
        )
        capforest_scan(
            xadj, adjncy, adjwgt, wdeg, 2, 0, code, 2, True, False,
            *pq_state, visited, r, scan_order, mark_u, mark_v, out,
        )
        pq_state2, _, r2, _, _, _, _ = alloc_scan_state(code, n, len(adjncy), 2)
        region_relax(
            0, 2, xadj, adjncy, adjwgt, np.zeros(n, dtype=np.uint8), r2,
            np.empty(n, dtype=np.int64), code, 2, *pq_state2,
        )
    labels = np.array([0, 0, 1], dtype=np.int64)
    lp_round(
        xadj, adjncy, adjwgt, labels.copy(),
        np.arange(n, dtype=np.int64), np.zeros(n, dtype=np.int64),
        np.empty(n, dtype=np.int64),
    )
    contract_arcs(xadj, adjncy, adjwgt, labels, 2)
    _WARMUP_SECONDS = time.perf_counter() - t0
    _WARMED = True
    return _WARMUP_SECONDS


def compiled_status() -> dict[str, Any]:
    """Observability snapshot of the compiled tier (surfaced by
    ``engine.stats()["kernels"]`` and therefore ``/v1/stats``)."""
    _, fallback = resolve_kernel("compiled")
    return {
        "registry": list(KERNELS),
        "numba": NUMBA_AVAILABLE,
        "compiled_available": compiled_available(),
        "pure_python_forced": pure_python_forced(),
        "fallback": fallback,
        "warmed": _WARMED,
        "warmup_seconds": round(_WARMUP_SECONDS, 6),
        "compile_count": compile_count(),
    }


__all__ = [
    "COMPILED_FALLBACK",
    "KERNELS",
    "KERNEL_CROSSOVERS",
    "NUMBA_AVAILABLE",
    "NUMBA_DISABLED_REASON",
    "check_kernel",
    "compile_count",
    "compiled_available",
    "compiled_status",
    "maybe_njit",
    "pure_python_forced",
    "resolve_kernel",
    "warmup",
]
