"""Compiled graph contraction (twin of :func:`repro.graph.contract.contract_by_labels`).

Same aggregation semantics as the numpy implementation — intra-block arcs
vanish, parallel arcs between blocks merge with weights summed, output
arcs grouped by tail with heads ascending (the ``(src * nc + dst)`` key
order) — so the produced CSR arrays are element-for-element identical and
the contraction parity test can compare them directly.  Which is also why
correctness is free: any stable-vs-unstable sort difference is erased by
the duplicate merge.
"""

from __future__ import annotations

import numpy as np

from .jit import maybe_njit


@maybe_njit
def contract_arcs(xadj, adjncy, adjwgt, labels, nc):
    """Contract the arc set under ``labels``; returns ``(xadj, heads, weights)``.

    ``labels`` must be dense int64 in ``[0, nc)`` (``UnionFind.labels``
    format), matching the Python implementation's contract.
    """
    n = xadj.shape[0] - 1
    num_arcs = adjncy.shape[0]
    keys = np.empty(num_arcs, dtype=np.int64)
    wgt = np.empty(num_arcs, dtype=np.int64)
    k = 0
    for t in range(n):
        lt = labels[t]
        for i in range(xadj[t], xadj[t + 1]):
            lh = labels[adjncy[i]]
            if lt != lh:  # intra-block arcs vanish
                keys[k] = lt * nc + lh
                wgt[k] = adjwgt[i]
                k += 1
    order = np.argsort(keys[:k])
    # merge runs of equal (tail, head) keys, summing weights
    out_keys = np.empty(k, dtype=np.int64)
    out_w = np.empty(k, dtype=np.int64)
    u = 0
    for j in range(k):
        kk = keys[order[j]]
        w = wgt[order[j]]
        if u > 0 and out_keys[u - 1] == kk:
            out_w[u - 1] += w
        else:
            out_keys[u] = kk
            out_w[u] = w
            u += 1
    xadj_out = np.zeros(nc + 1, dtype=np.int64)
    heads = np.empty(u, dtype=np.int64)
    for j in range(u):
        t = out_keys[j] // nc
        heads[j] = out_keys[j] - t * nc
        xadj_out[t + 1] += 1
    for t in range(nc):
        xadj_out[t + 1] += xadj_out[t]
    return xadj_out, heads, out_w[:u]


__all__ = ["contract_arcs"]
