"""Mincut-as-a-service: a hardened asyncio front end on :class:`SolverEngine`.

:class:`MinCutService` serves exact minimum cuts over HTTP/JSON with the
robustness properties a long-lived service boundary needs *designed in*,
not bolted on:

* **Admission control & load shedding** — every solve request passes a
  bounded global inflight budget and a per-client bounded queue
  (:mod:`~repro.service.admission`) *before* any graph bytes are parsed.
  Work that does not fit is shed immediately with ``429`` +
  ``Retry-After`` and a structured ``shed_reason``/``queue_depth`` body —
  the queue never grows unboundedly and admitted requests keep their
  latency budget.
* **Deadline propagation** — the client's ``timeout_ms`` (body field or
  ``X-Timeout-Ms`` header, defaulted and clamped by config) becomes an
  absolute deadline mapped onto the engine's per-request deadlines, so a
  blown budget cancels the *solve* (recycling the worker it occupied)
  within one engine dispatch cycle, and the client gets a ``504`` whose
  body names the digest, algorithm, and elapsed/deadline.
* **Disconnect cancellation** — while a solve is in flight the connection
  is watched; a client that vanishes has its engine request cancelled
  (queued work immediately, running work via its deadline) instead of
  burning pool time for nobody.
* **Bounded retry with jittered backoff** — failures are classified with
  the runtime fault taxonomy: a pooled worker crash
  (:class:`~repro.runtime.errors.WorkerCrashed`, the ``pool_recycle``
  path) is transient and retried up to ``retry_attempts`` times with
  exponential jittered backoff inside the request's deadline; graph
  validation errors are deterministic and never retried; blown deadlines
  never retry (the budget is already spent).
* **Graceful drain** — :meth:`MinCutService.drain` (wired to SIGTERM by
  ``python -m repro.service``) walks a three-state machine
  ``RUNNING → DRAINING → STOPPED``: stop accepting (admission sheds with
  reason ``"draining"``, the listener closes), let inflight requests
  finish or deadline-out under a grace period, cancel stragglers, flush
  the trace sink, exit 0.

Every lifecycle step emits the service event kinds of the closed
observability taxonomy (``service_start/stop``,
``request_admitted/shed/done``, ``client_disconnect``,
``drain_begin/end``), so ``python -m repro.observability.validate``
covers service traces end to end.

Threading model: the asyncio event loop owns all service state (counters,
active-request set, drain state).  Engine waits run on worker threads via
``asyncio.to_thread`` — bounded by the admission budget — and touch only
the per-request :class:`_RequestCtx` (lock-protected) plus the thread-safe
engine/admission objects.
"""

from __future__ import annotations

import asyncio
import random
import threading
import time
from dataclasses import dataclass

from ..engine import (
    EngineClosed,
    EngineFuture,
    RequestCancelled,
    SolverEngine,
    UnkeyableRequest,
)
from ..graph.builder import from_edges
from ..graph.io import read_edge_list, read_metis
from ..graph.validate import GraphValidationError
from ..runtime.errors import RuntimeFault, WorkerCrashed, WorkerTimeout
from .admission import AdmissionController
from .http import (
    BufferedStream,
    HttpError,
    Request,
    read_request,
    write_response,
)

#: drain state machine (see module docstring)
RUNNING, DRAINING, STOPPED = "running", "draining", "stopped"


class ClientDisconnected(ConnectionError):
    """The client hung up while its request was in flight."""


@dataclass
class ServiceConfig:
    """Tunables of the service front end (all bounded-by-default)."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; read the bound port from `service.port`
    max_inflight: int = 64  # global admitted solve units
    per_client_inflight: int = 16  # admitted units per API key / peer
    default_timeout_ms: int = 30_000  # applied when the client names none
    max_timeout_ms: int = 300_000  # client-supplied budgets are clamped here
    drain_grace_s: float = 10.0  # inflight grace before drain cancels
    max_body_bytes: int = 8 << 20
    max_batch_items: int = 256  # items per solve_many/batch request
    retry_attempts: int = 2  # extra attempts after a retryable fault
    retry_backoff_s: float = 0.05  # base backoff, doubled per retry, jittered
    retry_after_s: int = 1  # advertised in 429/503 Retry-After headers
    keepalive_timeout_s: float = 30.0  # idle keep-alive connection lifetime
    allow_test_faults: bool = False  # accept `_test_fault` kwargs (CI smoke)
    max_dynamic_graphs: int = 64  # registered /v1/update graph handles


def graph_from_json(obj) -> "object":
    """Build a CSR graph from the wire format ``{"n": N, "edges": [[u,v,w?],..]}``."""
    if not isinstance(obj, dict):
        raise HttpError(400, "graph must be an object with 'n' and 'edges'")
    n = obj.get("n")
    edges = obj.get("edges")
    if not isinstance(n, int) or isinstance(n, bool) or n < 2:
        raise HttpError(400, f"graph 'n' must be an integer >= 2, got {n!r}")
    if not isinstance(edges, list) or not edges:
        raise HttpError(400, "graph 'edges' must be a non-empty list")
    us, vs, ws = [], [], []
    for i, edge in enumerate(edges):
        if not isinstance(edge, (list, tuple)) or len(edge) not in (2, 3):
            raise HttpError(400, f"edge {i} must be [u, v] or [u, v, w]")
        us.append(edge[0])
        vs.append(edge[1])
        ws.append(edge[2] if len(edge) == 3 else 1)
    try:
        return from_edges(n, us, vs, ws)
    except (ValueError, TypeError, OverflowError) as exc:
        raise HttpError(400, f"invalid graph: {exc}") from None


def classify_failure(exc: BaseException) -> tuple[str, int]:
    """Map one solve failure to ``(kind, http_status)`` via the runtime
    fault taxonomy.  ``retryable`` marks the transient pool-recycle class;
    everything classified ``invalid`` is deterministic and must never be
    retried."""
    if isinstance(exc, (WorkerTimeout, TimeoutError)):
        return "timeout", 504
    if isinstance(exc, WorkerCrashed):
        return "retryable", 500
    if isinstance(exc, RequestCancelled):
        return "cancelled", 503
    if isinstance(exc, EngineClosed):
        return "unavailable", 503
    if isinstance(exc, (GraphValidationError, UnkeyableRequest, ValueError,
                        TypeError, KeyError)):
        return "invalid", 400
    if isinstance(exc, RuntimeFault):
        return "fault", 500
    return "internal", 500


class _RequestCtx:
    """Loop-side handle for one admitted solve request.

    Holds every engine future the request has spawned so the disconnect
    watch and the drain state machine can cancel outstanding work from the
    event loop while the blocking solver thread keeps running.
    """

    def __init__(self, rid: int, client: str, route: str, weight: int,
                 deadline_abs: float) -> None:
        self.rid = rid
        self.client = client
        self.route = route
        self.weight = weight
        self.deadline_abs = deadline_abs
        self.t0 = time.monotonic()
        self._lock = threading.Lock()
        self._futures: list[EngineFuture] = []
        self.cancelled = False
        self.retries = 0

    def register(self, fut: EngineFuture) -> None:
        with self._lock:
            self._futures.append(fut)
            if self.cancelled:
                fut.cancel()

    def cancel(self) -> None:
        with self._lock:
            self.cancelled = True
            futures = list(self._futures)
        for fut in futures:
            fut.cancel()

    def last_submit_info(self) -> dict:
        """Digest/algorithm of the most recent engine attempt (for 504
        bodies and logs), or an empty dict before any submit."""
        with self._lock:
            if not self._futures:
                return {}
            fut = self._futures[-1]
        return {"digest": fut.digest, "algorithm": fut.algorithm}

    @property
    def elapsed(self) -> float:
        return round(time.monotonic() - self.t0, 6)


class MinCutService:
    """The HTTP/JSON front end; see module docstring.

    The service borrows the engine — closing the service never closes the
    engine (``python -m repro.service`` owns and closes both).
    """

    def __init__(self, engine: SolverEngine, config: ServiceConfig | None = None,
                 tracer=None, *, jitter_seed: int | None = None) -> None:
        self._engine = engine
        self.config = config or ServiceConfig()
        self._tracer = tracer
        self._admission = AdmissionController(
            max_inflight=self.config.max_inflight,
            per_client_inflight=self.config.per_client_inflight,
        )
        self._rng = random.Random(jitter_seed)
        self._server: asyncio.base_events.Server | None = None
        self._state = STOPPED
        self._active: set[_RequestCtx] = set()
        self._conn_tasks: set[asyncio.Task] = set()
        self._next_rid = 0
        self._drain_done: asyncio.Event | None = None
        self._drain_summary: dict = {"drained": 0, "cancelled": 0,
                                     "seconds": 0.0}
        # loop-thread-only counters (read via /v1/stats in the same loop)
        self._counters = {
            "connections": 0, "requests": 0, "admitted": 0, "shed": 0,
            "done_ok": 0, "done_error": 0, "disconnects": 0, "retries": 0,
            "drain_cancelled": 0, "updates": 0,
        }
        # /v1/update graph registry: created/looked-up on the event loop
        # thread only (no lock needed); solver threads share the handles,
        # whose own lock serialises concurrent updates per graph_id
        self._dynamic: dict[str, object] = {}

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Bind and start serving; idempotent against double starts."""
        if self._server is not None:
            raise RuntimeError("service already started")
        self._server = await asyncio.start_server(
            self._on_connection, self.config.host, self.config.port
        )
        self._state = RUNNING
        self._drain_done = asyncio.Event()
        self._emit(
            "service_start",
            host=self.config.host,
            port=self.port,
            max_inflight=self.config.max_inflight,
            per_client_inflight=self.config.per_client_inflight,
            drain_grace_s=self.config.drain_grace_s,
            pool_size=self._engine.stats()["pool"]["size"],
        )

    @property
    def port(self) -> int:
        """The bound TCP port (resolves ``port=0`` ephemeral binds)."""
        assert self._server is not None, "service not started"
        return self._server.sockets[0].getsockname()[1]

    @property
    def state(self) -> str:
        return self._state

    @property
    def admission(self) -> AdmissionController:
        """The live admission controller (read-only observability hook)."""
        return self._admission

    async def drain(self, grace: float | None = None) -> dict:
        """Graceful drain: stop admitting, let inflight finish or
        deadline-out within ``grace`` seconds, cancel stragglers.

        Returns ``{"drained": .., "cancelled": .., "seconds": ..}``.
        Idempotent: concurrent calls await the first drain's completion.
        """
        if self._state == STOPPED and self._server is None:
            return {"drained": 0, "cancelled": 0, "seconds": 0.0}
        if self._state == DRAINING:
            await self._drain_done.wait()
            return dict(self._drain_summary)
        grace = self.config.drain_grace_s if grace is None else grace
        t0 = time.monotonic()
        self._state = DRAINING
        active_at_begin = len(self._active)
        inflight = self._admission.begin_drain()
        self._emit("drain_begin", inflight=inflight,
                   active_requests=active_at_begin, grace_s=grace)
        # stop accepting new connections; existing ones shed via admission
        self._server.close()
        await self._server.wait_closed()

        drained_in_grace = await self._wait_active_empty(grace)
        cancelled = 0
        if not drained_in_grace:
            for ctx in list(self._active):
                ctx.cancel()
                cancelled += 1
            self._counters["drain_cancelled"] += cancelled
            # cancelled futures resolve within one engine dispatch cycle;
            # give the handlers a short, bounded unwind window
            await self._wait_active_empty(5.0)
        seconds = round(time.monotonic() - t0, 6)
        summary = {
            "drained": active_at_begin - cancelled,
            "cancelled": cancelled,
            "seconds": seconds,
        }
        self._emit("drain_end", **summary)
        if self._tracer is not None:
            self._tracer.flush()
        self._drain_summary = dict(summary)
        self._drain_done.set()
        return summary

    async def _wait_active_empty(self, timeout: float) -> bool:
        deadline = time.monotonic() + timeout
        while self._active:
            if time.monotonic() >= deadline:
                return False
            await asyncio.sleep(0.02)
        return True

    async def close(self) -> None:
        """Drain (if still running), close connections, emit the stop event."""
        if self._state == RUNNING or self._state == DRAINING:
            await self.drain()
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        if self._state != STOPPED:
            self._state = STOPPED
            self._emit("service_stop", **self._counters)
            if self._tracer is not None:
                self._tracer.flush()
        self._server = None

    # -- connection handling -------------------------------------------------

    async def _on_connection(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        self._counters["connections"] += 1
        stream = BufferedStream(reader)
        peer = writer.get_extra_info("peername")
        peer_host = peer[0] if isinstance(peer, tuple) else str(peer)
        try:
            await self._serve_connection(stream, writer, peer_host)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _serve_connection(self, stream: BufferedStream,
                                writer: asyncio.StreamWriter,
                                peer_host: str) -> None:
        while True:
            try:
                req = await asyncio.wait_for(
                    read_request(stream, self.config.max_body_bytes),
                    timeout=self.config.keepalive_timeout_s,
                )
            except (asyncio.TimeoutError, TimeoutError):
                return  # idle keep-alive connection: close quietly
            except HttpError as exc:
                await write_response(writer, exc.status,
                                     {"error": exc.detail}, keep_alive=False)
                return
            if req is None:
                return  # clean EOF between requests
            self._counters["requests"] += 1
            client = req.headers.get("x-api-key") or peer_host
            keep_alive = req.keep_alive and self._state == RUNNING
            try:
                status, payload, extra = await self._dispatch(req, stream, client)
            except ClientDisconnected:
                self._counters["disconnects"] += 1
                return
            except HttpError as exc:
                status, payload, extra = exc.status, {"error": exc.detail}, None
            try:
                await write_response(writer, status, payload,
                                     keep_alive=keep_alive, extra_headers=extra)
            except (ConnectionError, OSError):
                self._counters["disconnects"] += 1
                return
            if not keep_alive:
                return

    # -- routing -------------------------------------------------------------

    async def _dispatch(self, req: Request, stream: BufferedStream,
                        client: str) -> tuple[int, dict, dict | None]:
        route = (req.method, req.path)
        if route == ("GET", "/v1/healthz"):
            return self._healthz()
        if route == ("GET", "/v1/stats"):
            return 200, self.stats(), None
        if route == ("POST", "/v1/solve"):
            return await self._handle_solve(req, stream, client)
        if route == ("POST", "/v1/update"):
            return await self._handle_update(req, stream, client)
        if route == ("POST", "/v1/solve_many"):
            return await self._handle_many(req, stream, client, batch=False)
        if route == ("POST", "/v1/batch"):
            return await self._handle_many(req, stream, client, batch=True)
        if req.path in ("/v1/healthz", "/v1/stats", "/v1/solve",
                        "/v1/update", "/v1/solve_many", "/v1/batch"):
            raise HttpError(405, f"{req.method} not allowed on {req.path}")
        raise HttpError(404, f"no route {req.path}")

    def _healthz(self) -> tuple[int, dict, None]:
        engine_stats = self._engine.stats()
        body = {
            "status": self._state,
            "inflight": self._admission.inflight,
            "engine_queue_depth": engine_stats["queue_depth"],
            "engine_inflight": engine_stats["inflight"],
        }
        # a draining server answers 503 so load balancers stop routing to it
        return (200 if self._state == RUNNING else 503), body, None

    def stats(self) -> dict:
        """The ``/v1/stats`` document: service, admission, engine."""
        return {
            "state": self._state,
            "service": dict(self._counters),
            "admission": self._admission.stats(),
            "engine": self._engine.stats(),
        }

    # -- solve routes --------------------------------------------------------

    def _deadline_from(self, req: Request, body: dict) -> tuple[float, int]:
        """Resolve the request deadline: body ``timeout_ms`` wins over the
        ``X-Timeout-Ms`` header, both clamped to ``max_timeout_ms``."""
        raw = body.get("timeout_ms", req.headers.get("x-timeout-ms"))
        if raw is None:
            timeout_ms = self.config.default_timeout_ms
        else:
            try:
                timeout_ms = int(raw)
            except (TypeError, ValueError):
                raise HttpError(400, f"timeout_ms must be an integer, "
                                     f"got {raw!r}") from None
            if timeout_ms <= 0:
                raise HttpError(400, f"timeout_ms must be positive, got {timeout_ms}")
        timeout_ms = min(timeout_ms, self.config.max_timeout_ms)
        return time.monotonic() + timeout_ms / 1000.0, timeout_ms

    def _shed_response(self, route: str, client: str, shed_reason: str,
                       queue_depth: int) -> tuple[int, dict, dict]:
        self._counters["shed"] += 1
        self._emit("request_shed", route=route, client=client,
                   shed_reason=shed_reason, queue_depth=queue_depth,
                   retry_after_s=self.config.retry_after_s)
        status = 503 if shed_reason == "draining" else 429
        body = {
            "error": "request shed",
            "shed_reason": shed_reason,
            "queue_depth": queue_depth,
        }
        return status, body, {"Retry-After": str(self.config.retry_after_s)}

    def _admit(self, route: str, client: str, weight: int,
               deadline_abs: float, timeout_ms: int):
        """Admission decision + tracing; returns a ctx or a shed response."""
        decision = self._admission.try_admit(client, weight)
        if not decision.admitted:
            return None, self._shed_response(route, client,
                                             decision.shed_reason,
                                             decision.queue_depth)
        self._counters["admitted"] += 1
        rid, self._next_rid = self._next_rid, self._next_rid + 1
        ctx = _RequestCtx(rid, client, route, weight, deadline_abs)
        self._active.add(ctx)
        self._emit("request_admitted", rid=rid, route=route, client=client,
                   items=weight, timeout_ms=timeout_ms,
                   queue_depth=decision.queue_depth)
        return ctx, None

    def _parse_solve_fields(
        self, item: dict
    ) -> tuple[str | None, dict, bool, dict]:
        """Common per-solve fields: algorithm, engine kwargs, cache flag,
        and the output-shape options (``all_cuts``/``most_balanced``)."""
        algorithm = item.get("algorithm")
        if algorithm is not None and not isinstance(algorithm, str):
            raise HttpError(400, f"algorithm must be a string, got {algorithm!r}")
        kwargs = item.get("kwargs", {})
        if not isinstance(kwargs, dict):
            raise HttpError(400, "kwargs must be an object")
        kwargs = dict(kwargs)
        if not self.config.allow_test_faults:
            for key in kwargs:
                if key.startswith("_"):
                    raise HttpError(400, f"unknown solver kwarg {key!r}")
        cache = item.get("cache", True)
        if not isinstance(cache, bool):
            raise HttpError(400, f"cache must be a boolean, got {cache!r}")
        options = {}
        for key in ("all_cuts", "most_balanced"):
            flag = item.get(key, False)
            if not isinstance(flag, bool):
                raise HttpError(400, f"{key} must be a boolean, got {flag!r}")
            options[key] = flag
        return algorithm, kwargs, cache, options

    async def _handle_solve(self, req: Request, stream: BufferedStream,
                            client: str) -> tuple[int, dict, dict | None]:
        body = req.json()
        if not isinstance(body, dict):
            raise HttpError(400, "request body must be a JSON object")
        deadline_abs, timeout_ms = self._deadline_from(req, body)
        ctx, shed = self._admit("/v1/solve", client, 1, deadline_abs, timeout_ms)
        if ctx is None:
            return shed
        try:
            algorithm, kwargs, cache, options = self._parse_solve_fields(body)
            graph = graph_from_json(body.get("graph"))
            include_side = bool(body.get("include_side", False))
        except HttpError:
            self._request_done(ctx, 400)
            raise
        solve_task = asyncio.create_task(asyncio.to_thread(
            self._solve_blocking, ctx, graph, algorithm, kwargs, cache, options
        ))
        solve_task.add_done_callback(_reap_task)
        try:
            result = await self._await_with_disconnect(solve_task, stream, ctx)
        except ClientDisconnected:
            self._on_disconnect(ctx, solve_task)
            raise
        except Exception as exc:  # noqa: BLE001 - classified into HTTP statuses
            kind, status = classify_failure(exc)
            self._request_done(ctx, status)
            return status, self._failure_body(exc, kind, ctx, timeout_ms), None
        payload = self._result_body(result, include_side, ctx)
        self._request_done(ctx, 200)
        return 200, payload, None

    def _edge_batch(self, body: dict, key: str, arity: int) -> list:
        """Validate the wire shape of an ``inserts``/``deletes`` list."""
        batch = body.get(key, [])
        if not isinstance(batch, list):
            raise HttpError(400, f"'{key}' must be a list")
        for i, row in enumerate(batch):
            if not isinstance(row, (list, tuple)) or not (
                2 <= len(row) <= arity
            ):
                want = "[u, v]" if arity == 2 else "[u, v] or [u, v, w]"
                raise HttpError(400, f"{key}[{i}] must be {want}")
        return batch

    def _dynamic_handle(self, body: dict):
        """Resolve (or register) the request's dynamic-graph handle.

        Runs on the event loop thread, which owns the registry: a request
        carrying ``graph`` registers a new ``graph_id`` (409 if taken, 413
        when the registry is full); one without must name a known id (404).
        """
        from ..dynamic import DynamicGraph

        graph_id = body.get("graph_id")
        if not isinstance(graph_id, str) or not graph_id:
            raise HttpError(400, "'graph_id' must be a non-empty string")
        if "graph" in body:
            if graph_id in self._dynamic:
                raise HttpError(
                    409, f"graph_id {graph_id!r} is already registered; "
                         "omit 'graph' to update it"
                )
            if len(self._dynamic) >= self.config.max_dynamic_graphs:
                raise HttpError(
                    413, f"dynamic graph registry is full "
                         f"({self.config.max_dynamic_graphs} graphs)"
                )
            self._dynamic[graph_id] = DynamicGraph(graph_from_json(body["graph"]))
        handle = self._dynamic.get(graph_id)
        if handle is None:
            raise HttpError(
                404, f"unknown graph_id {graph_id!r}; register it by "
                     "including 'graph' in the first request"
            )
        return graph_id, handle

    async def _handle_update(self, req: Request, stream: BufferedStream,
                             client: str) -> tuple[int, dict, dict | None]:
        """``POST /v1/update``: apply an edge batch to a registered dynamic
        graph and return the (warm) re-solve — same admission, deadline,
        disconnect, and failure machinery as ``/v1/solve``."""
        body = req.json()
        if not isinstance(body, dict):
            raise HttpError(400, "request body must be a JSON object")
        deadline_abs, timeout_ms = self._deadline_from(req, body)
        ctx, shed = self._admit("/v1/update", client, 1, deadline_abs,
                                timeout_ms)
        if ctx is None:
            return shed
        try:
            algorithm, kwargs, cache, options = self._parse_solve_fields(body)
            inserts = self._edge_batch(body, "inserts", 3)
            deletes = self._edge_batch(body, "deletes", 2)
            graph_id, handle = self._dynamic_handle(body)
            include_side = bool(body.get("include_side", False))
        except HttpError:
            self._request_done(ctx, 400)
            raise
        self._counters["updates"] += 1
        solve_task = asyncio.create_task(asyncio.to_thread(
            self._update_blocking, ctx, handle, inserts, deletes, algorithm,
            kwargs, cache, options,
        ))
        solve_task.add_done_callback(_reap_task)
        try:
            result = await self._await_with_disconnect(solve_task, stream, ctx)
        except ClientDisconnected:
            self._on_disconnect(ctx, solve_task)
            raise
        except Exception as exc:  # noqa: BLE001 - classified into HTTP statuses
            kind, status = classify_failure(exc)
            self._request_done(ctx, status)
            return status, self._failure_body(exc, kind, ctx, timeout_ms), None
        payload = self._result_body(result, include_side, ctx)
        payload["graph_id"] = graph_id
        payload["version"] = handle.version
        payload["digest"] = handle.digest
        payload["n"] = handle.graph.n
        payload["m"] = handle.graph.m
        payload["warm"] = result.stats.get("warm")
        self._request_done(ctx, 200)
        return 200, payload, None

    async def _handle_many(self, req: Request, stream: BufferedStream,
                           client: str, *, batch: bool
                           ) -> tuple[int, dict, dict | None]:
        route = "/v1/batch" if batch else "/v1/solve_many"
        body = req.json()
        if not isinstance(body, dict):
            raise HttpError(400, "request body must be a JSON object")
        items = body.get("items")
        if not isinstance(items, list) or not items:
            raise HttpError(400, "'items' must be a non-empty list")
        if len(items) > self.config.max_batch_items:
            raise HttpError(413, f"{len(items)} items exceed the "
                                 f"{self.config.max_batch_items}-item bound")
        deadline_abs, timeout_ms = self._deadline_from(req, body)
        ctx, shed = self._admit(route, client, len(items), deadline_abs,
                                timeout_ms)
        if ctx is None:
            return shed
        try:
            defaults_algorithm, defaults_kwargs, defaults_cache, \
                defaults_options = self._parse_solve_fields(body)
            parsed = [
                self._parse_item(item, i, batch, defaults_algorithm,
                                 defaults_kwargs, defaults_cache,
                                 defaults_options)
                for i, item in enumerate(items)
            ]
        except HttpError:
            self._request_done(ctx, 400)
            raise
        solve_task = asyncio.create_task(asyncio.to_thread(
            self._solve_many_blocking, ctx, parsed
        ))
        solve_task.add_done_callback(_reap_task)
        try:
            entries = await self._await_with_disconnect(solve_task, stream, ctx)
        except ClientDisconnected:
            self._on_disconnect(ctx, solve_task)
            raise
        except Exception as exc:  # noqa: BLE001 - classified into HTTP statuses
            kind, status = classify_failure(exc)
            self._request_done(ctx, status)
            return status, self._failure_body(exc, kind, ctx, timeout_ms), None
        failed = sum(1 for e in entries if "error" in e)
        self._request_done(ctx, 200)
        return 200, {"results": entries, "items": len(entries),
                     "failed": failed}, None

    def _parse_item(self, item, index: int, batch: bool,
                    default_algorithm, default_kwargs: dict,
                    default_cache: bool, default_options: dict) -> dict:
        """One solve_many/batch item → a normalized spec for the collector."""
        if not isinstance(item, dict):
            raise HttpError(400, f"item {index} must be an object")
        algorithm, kwargs, cache, options = self._parse_solve_fields(
            {"algorithm": item.get("algorithm", default_algorithm),
             "kwargs": {**default_kwargs, **item.get("kwargs", {})}
             if isinstance(item.get("kwargs", {}), dict) else item.get("kwargs"),
             "cache": item.get("cache", default_cache),
             "all_cuts": item.get("all_cuts", default_options["all_cuts"]),
             "most_balanced": item.get("most_balanced",
                                       default_options["most_balanced"])}
        )
        spec = {"algorithm": algorithm, "kwargs": kwargs, "cache": cache,
                "options": options,
                "include_side": bool(item.get("include_side", False))}
        if batch:
            path = item.get("path")
            if not isinstance(path, str) or not path:
                raise HttpError(400, f"batch item {index} has no 'path'")
            spec["path"] = path
            spec["format"] = item.get("format", "metis")
            if spec["format"] not in ("metis", "edgelist"):
                raise HttpError(400, f"batch item {index} format must be "
                                     f"'metis' or 'edgelist'")
        else:
            spec["graph"] = graph_from_json(item.get("graph"))
        return spec

    # -- blocking solve paths (worker threads) -------------------------------

    def _solve_blocking(self, ctx: _RequestCtx, graph, algorithm: str | None,
                        kwargs: dict, cache: bool,
                        options: dict | None = None):
        """Submit + await one engine solve with bounded jittered retries.

        Runs on a ``to_thread`` worker.  Retries only the transient
        pool-recycle class (``WorkerCrashed``); invalid input and blown
        deadlines surface immediately.  Every attempt re-checks the
        remaining deadline budget and the disconnect flag.
        """
        attempts_left = self.config.retry_attempts
        backoff = self.config.retry_backoff_s
        while True:
            if ctx.cancelled:
                raise RequestCancelled("client went away")
            remaining = ctx.deadline_abs - time.monotonic()
            if remaining <= 0:
                raise WorkerTimeout(-1, ctx.elapsed)
            fut = self._engine.submit(graph, algorithm, deadline=remaining,
                                      cache=cache, **(options or {}), **kwargs)
            ctx.register(fut)
            try:
                # the engine enforces the real deadline; the +1s margin only
                # guards against a wedged dispatcher, mapping to 504 anyway
                return fut.result(timeout=remaining + 1.0)
            except WorkerCrashed:
                if attempts_left <= 0:
                    raise
                attempts_left -= 1
                ctx.retries += 1
                sleep_s = backoff * (0.5 + self._rng.random())
                backoff *= 2.0
                if time.monotonic() + sleep_s >= ctx.deadline_abs:
                    raise
                time.sleep(sleep_s)

    def _update_blocking(self, ctx: _RequestCtx, handle, inserts, deletes,
                         algorithm: str | None, kwargs: dict, cache: bool,
                         options: dict) -> object:
        """Apply + re-solve one update on a ``to_thread`` worker.

        Retries mirror :meth:`_solve_blocking`, with one twist: the batch
        is applied exactly once — a retry after a cold-path worker crash
        re-enters :meth:`SolverEngine.update` with *empty* batches (a
        no-op apply) so edges are never inserted or deleted twice.
        """
        attempts_left = self.config.retry_attempts
        backoff = self.config.retry_backoff_s
        while True:
            if ctx.cancelled:
                raise RequestCancelled("client went away")
            remaining = ctx.deadline_abs - time.monotonic()
            if remaining <= 0:
                raise WorkerTimeout(-1, ctx.elapsed)
            try:
                return self._engine.update(
                    handle, inserts, deletes, algorithm=algorithm,
                    deadline=remaining, cache=cache, **options, **kwargs,
                )
            except WorkerCrashed:
                if attempts_left <= 0:
                    raise
                attempts_left -= 1
                ctx.retries += 1
                inserts, deletes = (), ()  # batch already applied
                sleep_s = backoff * (0.5 + self._rng.random())
                backoff *= 2.0
                if time.monotonic() + sleep_s >= ctx.deadline_abs:
                    raise
                time.sleep(sleep_s)

    def _solve_many_blocking(self, ctx: _RequestCtx,
                             specs: list[dict]) -> list[dict]:
        """Collect a whole solve_many/batch request; per-item error entries."""
        entries = []
        for spec in specs:
            try:
                graph = spec.get("graph")
                if graph is None:  # batch item: read server-side
                    reader = (read_metis if spec["format"] == "metis"
                              else read_edge_list)
                    graph = reader(spec["path"])
                result = self._solve_blocking(
                    ctx, graph, spec["algorithm"], spec["kwargs"],
                    spec["cache"], spec["options"]
                )
            except Exception as exc:  # noqa: BLE001 - per-item entries
                kind, _status = classify_failure(exc)
                if isinstance(exc, OSError):
                    kind = "invalid"
                entry = {"error": str(exc), "kind": kind}
                if "path" in spec:
                    entry["path"] = spec["path"]
                entries.append(entry)
                if isinstance(exc, RequestCancelled):
                    # the client is gone or the drain cancelled us: stop
                    # burning pool time on the remaining items
                    entries.extend(
                        {"error": "cancelled before solving", "kind": "cancelled"}
                        for _ in range(len(specs) - len(entries))
                    )
                    break
            else:
                entry = self._result_body(result, spec["include_side"], ctx)
                if "path" in spec:
                    entry["path"] = spec["path"]
                entries.append(entry)
        return entries

    # -- await / disconnect / completion helpers -----------------------------

    async def _await_with_disconnect(self, solve_task: asyncio.Task,
                                     stream: BufferedStream,
                                     ctx: _RequestCtx):
        """Await the solve while watching the connection for EOF.

        Bytes that arrive mid-solve (a pipelined next request) are fed back
        into the stream buffer; EOF raises :class:`ClientDisconnected`.
        """
        while True:
            watch = asyncio.create_task(stream.read_underlying())
            try:
                done, _pending = await asyncio.wait(
                    {solve_task, watch}, return_when=asyncio.FIRST_COMPLETED
                )
            finally:
                if not watch.done():
                    watch.cancel()
                    await asyncio.gather(watch, return_exceptions=True)
            if solve_task in done:
                if watch.done() and not watch.cancelled():
                    exc = watch.exception()
                    if exc is None and watch.result():
                        stream.feed(watch.result())
                return solve_task.result()
            data = watch.result()
            if not data:
                raise ClientDisconnected(f"request {ctx.rid}: client hung up")
            stream.feed(data)

    def _on_disconnect(self, ctx: _RequestCtx, solve_task: asyncio.Task) -> None:
        """Cancel a vanished client's work; settle accounting when the
        blocking solver actually unwinds."""
        ctx.cancel()
        self._emit("client_disconnect", rid=ctx.rid, route=ctx.route,
                   client=ctx.client, seconds=ctx.elapsed)

        def settle(_task: asyncio.Task) -> None:
            self._settle(ctx)

        if solve_task.done():
            self._settle(ctx)
        else:
            solve_task.add_done_callback(settle)

    def _settle(self, ctx: _RequestCtx) -> None:
        """Release the admission units exactly once per request."""
        if ctx in self._active:
            self._active.discard(ctx)
            self._admission.release(ctx.client, ctx.weight)

    def _request_done(self, ctx: _RequestCtx, status: int) -> None:
        self._settle(ctx)
        self._counters["done_ok" if status < 400 else "done_error"] += 1
        self._counters["retries"] += ctx.retries
        self._emit("request_done", rid=ctx.rid, route=ctx.route,
                   status=status, seconds=ctx.elapsed, retries=ctx.retries)

    def _result_body(self, result, include_side: bool, ctx: _RequestCtx) -> dict:
        body = {
            "value": int(result.value),
            "algorithm": result.algorithm,
            "n": int(result.n),
            "seconds": ctx.elapsed,
        }
        if include_side and result.side is not None:
            body["side"] = [int(v) for v in result.smaller_side()]
        if result.cactus is not None:
            body["num_min_cuts"] = result.num_min_cuts()
            info = result.stats.get("most_balanced")
            if info is not None:
                body["most_balanced"] = {
                    **info,
                    "side": [int(v) for v in result.smaller_side()],
                    "in_cut": [int(v) for v in result.cactus.in_cut()],
                }
        return body

    def _failure_body(self, exc: BaseException, kind: str, ctx: _RequestCtx,
                      timeout_ms: int) -> dict:
        body = {"error": str(exc), "kind": kind, "elapsed_s": ctx.elapsed,
                "retries": ctx.retries}
        if kind in ("timeout", "retryable", "fault"):
            body.update(ctx.last_submit_info())
        if kind == "timeout":
            body["timeout_ms"] = timeout_ms
        return body

    def _emit(self, kind: str, **fields) -> None:
        if self._tracer is not None:
            self._tracer.emit(kind, **fields)


def _reap_task(task: asyncio.Task) -> None:
    """Retrieve (and drop) a task's exception so nothing logs as unretrieved."""
    if not task.cancelled():
        task.exception()
