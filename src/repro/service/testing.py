"""In-process service harness for tests and benchmarks.

:class:`ServiceThread` runs a :class:`~repro.service.server.MinCutService`
on a private asyncio event loop in a daemon thread, so synchronous test
code (and the benchmark load generator) can speak real HTTP to a real
server without subprocess plumbing.  The context manager guarantees
teardown: drain, close, loop shutdown, thread join — a test that fails
mid-request still releases its port and its engine.
"""

from __future__ import annotations

import asyncio
import threading

from ..engine import SolverEngine
from .server import MinCutService, ServiceConfig


class ServiceThread:
    """Run engine + service on a background event loop; expose the port.

    Parameters mirror the two constructors: ``engine_kwargs`` builds the
    :class:`SolverEngine` (owned and closed by this harness), ``config``
    is the :class:`ServiceConfig`, ``tracer`` is shared by both layers so
    one trace file carries the full request→engine event stream.
    """

    def __init__(self, *, engine_kwargs: dict | None = None,
                 config: ServiceConfig | None = None, tracer=None,
                 jitter_seed: int | None = 0) -> None:
        self._engine_kwargs = dict(engine_kwargs or {})
        self._config = config or ServiceConfig()
        self._tracer = tracer
        self._jitter_seed = jitter_seed
        self._ready = threading.Event()
        self._stop: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._startup_error: BaseException | None = None
        self.service: MinCutService | None = None
        self.engine: SolverEngine | None = None
        self.port: int | None = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "ServiceThread":
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="service-thread")
        self._thread.start()
        if not self._ready.wait(timeout=60.0):
            raise RuntimeError("service thread failed to start in time")
        if self._startup_error is not None:
            self._thread.join(timeout=10.0)
            raise RuntimeError("service startup failed") from self._startup_error
        return self

    def _run(self) -> None:
        asyncio.run(self._amain())

    async def _amain(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        try:
            self.engine = SolverEngine(tracer=self._tracer,
                                       **self._engine_kwargs)
            self.service = MinCutService(self.engine, self._config,
                                         tracer=self._tracer,
                                         jitter_seed=self._jitter_seed)
            await self.service.start()
            self.port = self.service.port
        except BaseException as exc:  # noqa: BLE001 - surfaced to start()
            self._startup_error = exc
            self._ready.set()
            return
        self._ready.set()
        await self._stop.wait()
        await self.service.close()
        self.engine.close()

    def drain(self, grace: float | None = None) -> dict:
        """Run the service's graceful drain from the calling thread."""
        fut = asyncio.run_coroutine_threadsafe(
            self.service.drain(grace), self._loop
        )
        return fut.result(timeout=120.0)

    def run(self, coro):
        """Run an arbitrary coroutine on the service loop (test hook)."""
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result(
            timeout=120.0
        )

    def stop(self) -> None:
        """Close the service and engine, stop the loop, join the thread."""
        if self._thread is None or not self._thread.is_alive():
            return
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=120.0)

    def __enter__(self) -> "ServiceThread":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()
