"""``python -m repro.service.smoke`` — end-to-end service smoke driver.

Boots a real ``python -m repro.service`` subprocess with a deliberately
tiny admission budget, then walks the full robustness surface CI cares
about in one pass:

1. ``/v1/healthz`` answers 200 while running;
2. a solve returns the exact minimum cut;
3. with the budget occupied by hanging requests, a further solve is
   *shed* — 429, ``Retry-After``, structured ``shed_reason`` body;
4. SIGTERM mid-load drains gracefully: the process exits 0 on its own,
   the inflight work having finished or deadlined out;
5. the trace file the server wrote validates against the closed event
   taxonomy and contains the service lifecycle (start → drain → stop).

Exits 0 on success, 1 with a diagnostic on any violated expectation —
one bounded, deterministic pass (the hangs carry ``timeout_ms`` so the
drain never waits on a 60 s sleep).
"""

from __future__ import annotations

import argparse
import signal
import subprocess
import sys
import threading
import time

from ..generators.gnm import connected_gnm
from .client import ServiceClient, graph_payload

STARTUP_TIMEOUT_S = 30.0
EXIT_TIMEOUT_S = 60.0


class SmokeFailure(Exception):
    pass


def _expect(condition: bool, message: str) -> None:
    if not condition:
        raise SmokeFailure(message)


def _launch(trace_path: str) -> tuple[subprocess.Popen, str, int]:
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.service",
         "--port", "0", "--pool-size", "1", "--max-inflight", "2",
         "--per-client-inflight", "2", "--drain-grace", "10",
         "--trace", trace_path, "--allow-test-faults"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    line = ""
    deadline = time.monotonic() + STARTUP_TIMEOUT_S
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if line.startswith("listening on "):
            break
        if proc.poll() is not None:
            raise SmokeFailure(
                f"server exited {proc.returncode} before binding: "
                f"{line + proc.stdout.read()}"
            )
    else:
        proc.kill()
        raise SmokeFailure("server never printed its listen address")
    host, _, port = line.removeprefix("listening on ").strip().rpartition(":")
    return proc, host, int(port)


def run_smoke(trace_path: str) -> None:
    graph = connected_gnm(60, 200, rng=0, weights=(1, 9))
    from ..core.api import minimum_cut

    expected = minimum_cut(graph).value

    proc, host, port = _launch(trace_path)
    try:
        client = ServiceClient(host, port)

        status, _h, body = client.healthz()
        _expect(status == 200 and body["status"] == "running",
                f"healthz while running: {status} {body}")

        status, _h, body = client.solve(graph)
        _expect(status == 200, f"solve failed: {status} {body}")
        _expect(body["value"] == expected,
                f"solve returned {body['value']}, expected {expected}")
        print(f"smoke: solve ok (value={body['value']})", flush=True)

        # occupy the 2-unit budget with bounded hangs, then provoke a shed
        hang = {"graph": graph_payload(graph), "cache": False,
                "timeout_ms": 8_000,
                "kwargs": {"_test_fault": {"test_fault": "hang",
                                           "sleep_seconds": 60}}}
        occupiers = [
            threading.Thread(
                target=ServiceClient(host, port).request,
                args=("POST", "/v1/solve", hang), daemon=True,
            )
            for _ in range(2)
        ]
        for t in occupiers:
            t.start()
        # wait until both hangs hold the budget, so the probe below cannot
        # race in ahead of them and queue behind the hung worker instead
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            if client.stats()["admission"]["inflight"] >= 2:
                break
            time.sleep(0.02)
        else:
            raise SmokeFailure("hang requests were never admitted")
        status, headers, body = client.solve(graph, cache=False,
                                             timeout_ms=2_000)
        _expect(status == 429,
                f"overloaded service never shed: {status} {body}")
        _expect(headers.get("Retry-After") is not None,
                f"shed without Retry-After: {headers}")
        _expect(body.get("shed_reason") in ("global_inflight", "client_queue"),
                f"shed body malformed: {body}")
        _expect("queue_depth" in body, f"shed body lacks queue_depth: {body}")
        print(f"smoke: shed ok ({body['shed_reason']}, "
              f"retry-after {headers['Retry-After']})", flush=True)

        # SIGTERM while the hangs are still inflight: graceful drain
        proc.send_signal(signal.SIGTERM)
        try:
            out, _ = proc.communicate(timeout=EXIT_TIMEOUT_S)
        except subprocess.TimeoutExpired:
            proc.kill()
            raise SmokeFailure("server did not exit within the drain window")
        _expect(proc.returncode == 0,
                f"drain exit code {proc.returncode}; output:\n{out}")
        _expect("drain:" in out, f"no drain summary in output:\n{out}")
        print(f"smoke: drain ok (exit 0); server said: "
              f"{out.strip().splitlines()[-1]}", flush=True)
        for t in occupiers:
            t.join(timeout=10.0)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10.0)

    # the trace must validate and carry the full service lifecycle
    from ..observability.schema import validate_trace_file

    summary = validate_trace_file(trace_path)
    by_kind = summary["by_kind"]
    for kind in ("service_start", "request_admitted", "request_done",
                 "request_shed", "drain_begin", "drain_end", "service_stop"):
        _expect(by_kind.get(kind, 0) >= 1, f"trace lacks {kind}: {by_kind}")
    print(f"smoke: trace ok ({summary['events']} events, "
          f"{by_kind['request_shed']} shed)", flush=True)


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.service.smoke",
        description="end-to-end solve/shed/drain smoke test",
    )
    ap.add_argument("--trace", default="service-trace.jsonl",
                    help="trace sink path handed to the server")
    args = ap.parse_args(argv)
    try:
        run_smoke(args.trace)
    except SmokeFailure as exc:
        print(f"smoke FAILED: {exc}", file=sys.stderr)
        return 1
    print("smoke: all checks passed", flush=True)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
