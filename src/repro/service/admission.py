"""Admission control: bounded global and per-client inflight budgets.

The service's first robustness rule is that it never accepts more work
than it has bounded memory for: every solve request must pass this
controller before anything is parsed into a graph or submitted to the
engine.  A request that cannot be admitted is *shed* immediately — the
caller gets a 429 with ``Retry-After`` and a structured
``shed_reason``/``queue_depth`` body, instead of joining an unbounded
queue whose latency has already blown every deadline.

Two budgets, checked in order:

* **global** — at most ``max_inflight`` admitted units across all
  clients (a ``solve_many``/``batch`` request of *k* items weighs *k*
  units, so one batch cannot smuggle unbounded work past the gate);
* **per-client** — at most ``per_client_inflight`` units per client
  identity (``X-API-Key`` header when present, else peer address), so one
  greedy client saturating its own queue cannot starve the rest.

``begin_drain()`` flips the controller into drain mode: every subsequent
admit sheds with reason ``"draining"`` while already-admitted work runs to
completion — the admission half of the graceful-drain state machine.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

#: shed reasons the controller can return (closed set, used in traces,
#: response bodies, and the load harness's shed accounting)
SHED_REASONS = ("draining", "global_inflight", "client_queue")


@dataclass
class Admission:
    """One admission decision."""

    admitted: bool
    shed_reason: str | None  # one of SHED_REASONS when not admitted
    queue_depth: int  # global admitted units at decision time


class AdmissionController:
    """Thread-safe inflight accounting; see module docstring."""

    def __init__(self, max_inflight: int = 64,
                 per_client_inflight: int = 16) -> None:
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        if per_client_inflight < 1:
            raise ValueError(
                f"per_client_inflight must be >= 1, got {per_client_inflight}"
            )
        self.max_inflight = max_inflight
        self.per_client_inflight = per_client_inflight
        self._lock = threading.Lock()
        self._inflight = 0
        self._per_client: dict[str, int] = {}
        self._draining = False
        self.admitted_total = 0
        self.shed_total = 0
        self.shed_by_reason = {reason: 0 for reason in SHED_REASONS}

    def try_admit(self, client: str, weight: int = 1) -> Admission:
        """Admit ``weight`` units for ``client``, or shed with a reason.

        An admitted decision **must** be paired with exactly one
        :meth:`release` of the same weight once the request resolves.
        """
        if weight < 1:
            raise ValueError(f"weight must be >= 1, got {weight}")
        with self._lock:
            if self._draining:
                return self._shed("draining")
            if self._inflight + weight > self.max_inflight:
                return self._shed("global_inflight")
            client_load = self._per_client.get(client, 0)
            if client_load + weight > self.per_client_inflight:
                return self._shed("client_queue")
            self._inflight += weight
            self._per_client[client] = client_load + weight
            self.admitted_total += 1
            return Admission(True, None, self._inflight)

    def _shed(self, reason: str) -> Admission:
        # caller holds the lock
        self.shed_total += 1
        self.shed_by_reason[reason] += 1
        return Admission(False, reason, self._inflight)

    def release(self, client: str, weight: int = 1) -> None:
        """Return ``weight`` admitted units (request finished or failed)."""
        with self._lock:
            if self._inflight < weight:
                raise ValueError(
                    f"release of {weight} exceeds inflight {self._inflight}"
                )
            self._inflight -= weight
            remaining = self._per_client.get(client, 0) - weight
            if remaining < 0:
                raise ValueError(f"client {client!r} released more than admitted")
            if remaining == 0:
                self._per_client.pop(client, None)
            else:
                self._per_client[client] = remaining

    def begin_drain(self) -> int:
        """Shed everything from now on; returns the inflight count at entry."""
        with self._lock:
            self._draining = True
            return self._inflight

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def inflight(self) -> int:
        with self._lock:
            return self._inflight

    def stats(self) -> dict:
        with self._lock:
            return {
                "max_inflight": self.max_inflight,
                "per_client_inflight": self.per_client_inflight,
                "inflight": self._inflight,
                "clients": len(self._per_client),
                "draining": self._draining,
                "admitted_total": self.admitted_total,
                "shed_total": self.shed_total,
                "shed_by_reason": dict(self.shed_by_reason),
            }
