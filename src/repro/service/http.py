"""Minimal HTTP/1.1 framing over asyncio streams.

The service deliberately speaks a small, hand-rolled subset of HTTP/1.1
instead of pulling in a framework: the repo's no-new-heavy-deps rule, plus
the robustness properties we need — bounded header/body sizes, explicit
keep-alive control, and a reader that can *push bytes back* so the server
can watch a connection for disconnect while a solve is in flight without
eating a pipelined follow-up request — are all easier to guarantee over a
couple hundred lines we own than to retrofit onto a framework.

Supported subset: request line + headers + ``Content-Length`` bodies,
``Connection: keep-alive``/``close``, JSON responses.  Not supported (and
rejected with clear 4xx/501 responses rather than misparsed): chunked
request bodies, upgrades, multiline headers.
"""

from __future__ import annotations

import asyncio
import json

#: request-line / header-line length bound (bytes)
MAX_LINE_BYTES = 16384

#: header count bound per request
MAX_HEADERS = 100

#: default request body bound (bytes); the server config can override
MAX_BODY_BYTES = 8 << 20

STATUS_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    499: "Client Closed Request",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class HttpError(Exception):
    """A malformed or oversized request; carries the HTTP status to send."""

    def __init__(self, status: int, detail: str) -> None:
        self.status = status
        self.detail = detail
        super().__init__(f"{status} {STATUS_REASONS.get(status, '')}: {detail}")


class Request:
    """One parsed HTTP request (headers lowercased, body raw bytes)."""

    def __init__(self, method: str, path: str, headers: dict[str, str],
                 body: bytes) -> None:
        self.method = method
        self.path = path
        self.headers = headers
        self.body = body

    def json(self):
        """The body parsed as JSON; :class:`HttpError` 400 on failure."""
        if not self.body:
            raise HttpError(400, "empty body where JSON was expected")
        try:
            return json.loads(self.body)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise HttpError(400, f"body is not valid JSON: {exc}") from None

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "keep-alive").lower() != "close"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Request({self.method} {self.path}, {len(self.body)}B)"


class BufferedStream:
    """A :class:`asyncio.StreamReader` with an explicit pushback buffer.

    The server's disconnect watch reads one chunk from the connection while
    a solve is in flight; if that chunk turns out to be a pipelined next
    request rather than EOF, it is pushed back here and the next
    :func:`read_request` sees it first.  All reads are bounded.
    """

    def __init__(self, reader: asyncio.StreamReader) -> None:
        self._reader = reader
        self._buf = b""

    def push(self, data: bytes) -> None:
        """Prepend ``data`` so the very next read sees it first."""
        self._buf = data + self._buf

    def feed(self, data: bytes) -> None:
        """Append ``data`` behind anything already buffered.

        The disconnect watch reads the *underlying* socket while a solve
        is in flight; whatever it receives is fed here in arrival order
        and parsed as the next request once the response is written.
        """
        self._buf += data

    async def read_underlying(self, n: int = 4096) -> bytes:
        """One read straight off the socket, bypassing the pushback buffer
        (the disconnect watch must see EOF even while bytes sit buffered)."""
        return await self._reader.read(n)

    async def read_chunk(self, n: int = 4096) -> bytes:
        """One read of up to ``n`` bytes (buffer first); ``b""`` at EOF."""
        if self._buf:
            out, self._buf = self._buf[:n], self._buf[n:]
            return out
        return await self._reader.read(n)

    async def read_line(self) -> bytes | None:
        """One CRLF/LF-terminated line without the terminator.

        Returns ``None`` on EOF before any byte; raises :class:`HttpError`
        431 when the line exceeds :data:`MAX_LINE_BYTES` and 400 on EOF
        mid-line.
        """
        while True:
            idx = self._buf.find(b"\n")
            if idx >= 0:
                if idx > MAX_LINE_BYTES:
                    raise HttpError(431, "header line exceeds the size bound")
                line, self._buf = self._buf[:idx], self._buf[idx + 1:]
                return line.rstrip(b"\r")
            if len(self._buf) > MAX_LINE_BYTES:
                raise HttpError(431, "header line exceeds the size bound")
            chunk = await self._reader.read(4096)
            if not chunk:
                if self._buf:
                    raise HttpError(400, "connection closed mid-header")
                return None
            self._buf += chunk

    async def read_exactly(self, n: int) -> bytes:
        """Exactly ``n`` body bytes; :class:`HttpError` 400 on early EOF."""
        parts = []
        remaining = n
        while remaining > 0:
            chunk = await self.read_chunk(min(remaining, 65536))
            if not chunk:
                raise HttpError(400, "connection closed mid-body")
            parts.append(chunk)
            remaining -= len(chunk)
        return b"".join(parts)


async def read_request(stream: BufferedStream,
                       max_body: int = MAX_BODY_BYTES) -> Request | None:
    """Parse one request from ``stream``; ``None`` on clean EOF between
    requests (the keep-alive loop's normal exit)."""
    line = await stream.read_line()
    if line is None:
        return None
    parts = line.decode("latin-1").split()
    if len(parts) != 3:
        raise HttpError(400, f"malformed request line: {line[:80]!r}")
    method, path, version = parts
    if not version.startswith("HTTP/1."):
        raise HttpError(400, f"unsupported protocol {version!r}")

    headers: dict[str, str] = {}
    while True:
        hline = await stream.read_line()
        if hline is None:
            raise HttpError(400, "connection closed mid-header")
        if not hline:
            break
        if len(headers) >= MAX_HEADERS:
            raise HttpError(431, "too many headers")
        name, sep, value = hline.decode("latin-1").partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line: {hline[:80]!r}")
        headers[name.strip().lower()] = value.strip()

    if headers.get("transfer-encoding"):
        raise HttpError(501, "chunked request bodies are not supported")
    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise HttpError(400, "non-integer Content-Length") from None
        if length < 0:
            raise HttpError(400, "negative Content-Length")
        if length > max_body:
            raise HttpError(413, f"body of {length} bytes exceeds the "
                                 f"{max_body}-byte bound")
        body = await stream.read_exactly(length)
    return Request(method, path, headers, body)


def encode_response(status: int, payload, *, keep_alive: bool = True,
                    extra_headers: dict[str, str] | None = None) -> bytes:
    """Serialize one JSON (or raw-bytes) response."""
    if isinstance(payload, bytes):
        body, ctype = payload, "application/octet-stream"
    else:
        body = (json.dumps(payload, separators=(",", ":")) + "\n").encode()
        ctype = "application/json"
    reason = STATUS_REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {ctype}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


async def write_response(writer: asyncio.StreamWriter, status: int, payload,
                         *, keep_alive: bool = True,
                         extra_headers: dict[str, str] | None = None) -> None:
    """Write and flush one response; swallow nothing (callers handle
    :class:`ConnectionError` as a client disconnect)."""
    writer.write(encode_response(status, payload, keep_alive=keep_alive,
                                 extra_headers=extra_headers))
    await writer.drain()
