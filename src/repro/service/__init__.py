"""Mincut-as-a-service: hardened asyncio HTTP/JSON front end.

The network layer the ROADMAP's "serves heavy traffic" north star asks
for, built robustness-first on :class:`~repro.engine.SolverEngine`::

    from repro.engine import SolverEngine
    from repro.service import MinCutService, ServiceConfig

    engine = SolverEngine(pool_size=4)
    service = MinCutService(engine, ServiceConfig(port=8377))
    # inside an event loop: await service.start(); ... await service.drain()

or, as a process, ``python -m repro.service --port 8377 --pool-size 4``.

Endpoints: ``POST /v1/solve``, ``POST /v1/solve_many``, ``POST /v1/batch``
(server-side manifest), ``GET /v1/healthz``, ``GET /v1/stats``.  See
:mod:`repro.service.server` for the admission-control, deadline,
retry, and graceful-drain semantics.
"""

from .admission import Admission, AdmissionController
from .client import ServiceClient, fire_concurrent, graph_payload
from .http import HttpError
from .server import (
    ClientDisconnected,
    MinCutService,
    ServiceConfig,
    classify_failure,
    graph_from_json,
)

__all__ = [
    "Admission",
    "AdmissionController",
    "ClientDisconnected",
    "HttpError",
    "MinCutService",
    "ServiceClient",
    "ServiceConfig",
    "classify_failure",
    "fire_concurrent",
    "graph_from_json",
    "graph_payload",
]
