"""``python -m repro.service`` — serve minimum cuts over HTTP.

Owns the whole process lifecycle: builds the engine and the service,
prints the bound address (machine-parseable first line), and wires
SIGTERM/SIGINT to the graceful-drain state machine — stop accepting,
finish or deadline-out inflight requests, flush the trace sink, exit 0.

Examples::

    python -m repro.service --port 8377 --pool-size 4
    python -m repro.service --port 0 --max-inflight 16 --trace service.jsonl
"""

from __future__ import annotations

import argparse
import asyncio
import signal
import sys

from ..core.api import ALGORITHMS
from ..engine import SolverEngine
from .server import MinCutService, ServiceConfig


def build_parser() -> argparse.ArgumentParser:
    ap = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Exact minimum cuts as an HTTP/JSON service.",
    )
    ap.add_argument("--host", default="127.0.0.1", help="bind address")
    ap.add_argument("--port", type=int, default=8377,
                    help="TCP port (0 = ephemeral; the bound port is printed)")
    ap.add_argument("--pool-size", type=int, default=2, metavar="N",
                    help="persistent engine solve workers (0 = in-process)")
    ap.add_argument("--cache-size", type=int, default=128, metavar="N",
                    help="engine result-cache entries (0 disables)")
    ap.add_argument("--algorithm", choices=sorted(ALGORITHMS),
                    default="noi-viecut",
                    help="default algorithm for requests naming none")
    ap.add_argument("--max-inflight", type=int, default=64, metavar="N",
                    help="global admitted solve units before shedding (429)")
    ap.add_argument("--per-client-inflight", type=int, default=16, metavar="N",
                    help="admitted units per API key / peer before shedding")
    ap.add_argument("--default-timeout-ms", type=int, default=30_000,
                    metavar="MS", help="deadline applied when a request "
                    "names no timeout_ms")
    ap.add_argument("--drain-grace", type=float, default=10.0, metavar="S",
                    help="seconds inflight requests get to finish on "
                    "SIGTERM before cancellation")
    ap.add_argument("--trace", metavar="PATH", default=None,
                    help="write the service+engine JSONL event trace to PATH")
    ap.add_argument("--allow-test-faults", action="store_true",
                    help="accept _test_fault solver kwargs (deterministic "
                    "fault injection for smoke tests; never in production)")
    return ap


async def _amain(args) -> int:
    tracer = None
    if args.trace is not None:
        from ..observability import Tracer

        try:
            tracer = Tracer(sink=args.trace)
        except OSError as exc:
            print(f"error opening trace sink {args.trace}: {exc}",
                  file=sys.stderr)
            return 2

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        max_inflight=args.max_inflight,
        per_client_inflight=args.per_client_inflight,
        default_timeout_ms=args.default_timeout_ms,
        drain_grace_s=args.drain_grace,
        allow_test_faults=args.allow_test_faults,
    )
    engine = SolverEngine(
        pool_size=args.pool_size,
        cache_size=args.cache_size,
        default_algorithm=args.algorithm,
        tracer=tracer,
    )
    service = MinCutService(engine, config, tracer=tracer)
    try:
        await service.start()
    except OSError as exc:
        print(f"error binding {args.host}:{args.port}: {exc}", file=sys.stderr)
        engine.close()
        if tracer is not None:
            tracer.close()
        return 2

    print(f"listening on {args.host}:{service.port}", flush=True)

    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(sig, stop.set)
    await stop.wait()
    print("drain: signal received, shutting down gracefully", flush=True)
    summary = await service.drain()
    await service.close()
    engine.close()
    if tracer is not None:
        tracer.close()
    print(
        f"drain: {summary['drained']} finished, {summary['cancelled']} "
        f"cancelled in {summary['seconds']:.3f}s",
        flush=True,
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return asyncio.run(_amain(args))


if __name__ == "__main__":
    raise SystemExit(main())
