"""A small stdlib client for the mincut service (tests, benchmarks, CI).

Wraps :mod:`http.client` — no new dependencies — with the service's JSON
conventions: every call returns ``(status, headers, body)`` with the body
already parsed.  :func:`fire_concurrent` is the shared load-generation
primitive of the benchmark harness and the CI smoke driver: a thread pool
of keep-alive connections replaying a payload list, recording per-request
status and latency so p50/p99/throughput/shed-rate fall out of one pass.
"""

from __future__ import annotations

import http.client
import json
import threading
import time


def graph_payload(graph) -> dict:
    """The wire form ``{"n": .., "edges": [[u, v, w], ..]}`` of a CSR graph."""
    us, vs, ws = graph.edge_arrays()
    return {
        "n": int(graph.n),
        "edges": [[int(u), int(v), int(w)] for u, v, w in zip(us, vs, ws)],
    }


class ServiceClient:
    """One keep-alive connection to a running service."""

    def __init__(self, host: str, port: int, *, timeout: float = 60.0,
                 api_key: str | None = None) -> None:
        self.host = host
        self.port = port
        self.api_key = api_key
        self._conn = http.client.HTTPConnection(host, port, timeout=timeout)

    def request(self, method: str, path: str, payload: dict | None = None,
                headers: dict[str, str] | None = None):
        """One round trip; returns ``(status, headers_dict, parsed_body)``."""
        body = None
        send_headers = dict(headers or {})
        if payload is not None:
            body = json.dumps(payload).encode()
            send_headers.setdefault("Content-Type", "application/json")
        if self.api_key is not None:
            send_headers.setdefault("X-API-Key", self.api_key)
        try:
            self._conn.request(method, path, body=body, headers=send_headers)
            resp = self._conn.getresponse()
            raw = resp.read()
        except (http.client.HTTPException, ConnectionError, OSError):
            # one reconnect: the server closes idle/drained keep-alives
            self._conn.close()
            self._conn.connect()
            self._conn.request(method, path, body=body, headers=send_headers)
            resp = self._conn.getresponse()
            raw = resp.read()
        parsed = json.loads(raw) if raw else None
        return resp.status, dict(resp.getheaders()), parsed

    def solve(self, graph_or_payload, **fields):
        """``POST /v1/solve``; ``graph_or_payload`` is a CSR graph or an
        already-encoded ``{"n", "edges"}`` dict.  Extra fields (``algorithm``,
        ``timeout_ms``, ``kwargs``, ``cache``, ``include_side``) pass through."""
        graph = graph_or_payload
        if not isinstance(graph, dict):
            graph = graph_payload(graph)
        return self.request("POST", "/v1/solve", {"graph": graph, **fields})

    def update(self, graph_id: str, **fields):
        """``POST /v1/update``; the first call for a ``graph_id`` registers
        it by passing ``graph=<CSR graph or {"n", "edges"} dict>``, later
        calls send ``inserts``/``deletes`` edge batches against it."""
        graph = fields.get("graph")
        if graph is not None and not isinstance(graph, dict):
            fields["graph"] = graph_payload(graph)
        return self.request("POST", "/v1/update",
                            {"graph_id": graph_id, **fields})

    def solve_many(self, items: list[dict], **fields):
        return self.request("POST", "/v1/solve_many",
                            {"items": items, **fields})

    def batch(self, items: list[dict], **fields):
        return self.request("POST", "/v1/batch", {"items": items, **fields})

    def healthz(self):
        return self.request("GET", "/v1/healthz")

    def stats(self) -> dict:
        status, _headers, body = self.request("GET", "/v1/stats")
        if status != 200:
            raise RuntimeError(f"/v1/stats returned {status}: {body}")
        return body

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def fire_concurrent(host: str, port: int, requests: list[dict], *,
                    concurrency: int = 8, api_key: str | None = None,
                    timeout: float = 60.0) -> list[dict]:
    """Replay ``requests`` through ``concurrency`` keep-alive connections.

    Each request dict is ``{"path": "/v1/solve", "payload": {...}}``
    (``method`` defaults to POST, GETs send no payload).  Returns one
    record per request, in input order::

        {"index", "status", "latency_s", "body", "retry_after"}

    ``status`` is ``0`` for transport errors (connection refused/reset),
    which the harness counts separately from HTTP-level sheds.
    """
    results: list[dict | None] = [None] * len(requests)
    cursor = {"next": 0}
    lock = threading.Lock()

    def worker() -> None:
        client = ServiceClient(host, port, timeout=timeout, api_key=api_key)
        try:
            while True:
                with lock:
                    index = cursor["next"]
                    if index >= len(requests):
                        return
                    cursor["next"] = index + 1
                spec = requests[index]
                t0 = time.perf_counter()
                try:
                    status, headers, body = client.request(
                        spec.get("method", "POST"), spec["path"],
                        spec.get("payload"),
                    )
                except (OSError, http.client.HTTPException, ValueError) as exc:
                    results[index] = {
                        "index": index, "status": 0, "body": {"error": str(exc)},
                        "latency_s": time.perf_counter() - t0,
                        "retry_after": None,
                    }
                    continue
                results[index] = {
                    "index": index,
                    "status": status,
                    "body": body,
                    "latency_s": time.perf_counter() - t0,
                    "retry_after": headers.get("Retry-After"),
                }
        finally:
            client.close()

    threads = [threading.Thread(target=worker, daemon=True)
               for _ in range(max(1, concurrency))]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return [r for r in results if r is not None]
