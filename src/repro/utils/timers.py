"""Lightweight wall-clock timing helpers used by solvers and experiments.

The paper reports average running time over five repetitions per instance;
:class:`RepeatTimer` reproduces that protocol.  :class:`Timer` is a
context-manager stopwatch that can be nested to attribute time to phases
(e.g. ``viecut`` seeding vs. ``capforest`` rounds vs. ``contract``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


class Timer:
    """A reentrant stopwatch accumulating elapsed seconds per named phase.

    Example
    -------
    >>> t = Timer()
    >>> with t.phase("scan"):
    ...     pass
    >>> t.total("scan") >= 0.0
    True
    """

    def __init__(self) -> None:
        self._totals: dict[str, float] = {}
        self._starts: dict[str, float] = {}

    def phase(self, name: str) -> "_PhaseContext":
        """Return a context manager that accumulates into phase ``name``."""
        return _PhaseContext(self, name)

    def start(self, name: str) -> None:
        self._starts[name] = time.perf_counter()

    def stop(self, name: str) -> float:
        elapsed = time.perf_counter() - self._starts.pop(name)
        self._totals[name] = self._totals.get(name, 0.0) + elapsed
        return elapsed

    def total(self, name: str) -> float:
        """Total accumulated seconds for ``name`` (0.0 if never started)."""
        return self._totals.get(name, 0.0)

    def totals(self) -> dict[str, float]:
        """A copy of all per-phase totals."""
        return dict(self._totals)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        inner = ", ".join(f"{k}={v:.4f}s" for k, v in sorted(self._totals.items()))
        return f"Timer({inner})"


class _PhaseContext:
    def __init__(self, timer: Timer, name: str) -> None:
        self._timer = timer
        self._name = name

    def __enter__(self) -> "_PhaseContext":
        self._timer.start(self._name)
        return self

    def __exit__(self, *exc: object) -> None:
        self._timer.stop(self._name)


@dataclass
class RepeatTimer:
    """Run a callable ``repetitions`` times and report the mean, as the paper does.

    Attributes
    ----------
    repetitions:
        Number of timed runs (the paper uses five).
    warmup:
        Untimed runs executed first (JIT-free Python still benefits from
        warming OS caches and numpy buffers).
    """

    repetitions: int = 5
    warmup: int = 0
    times: list[float] = field(default_factory=list)

    def measure(self, fn, *args, **kwargs):
        """Time ``fn(*args, **kwargs)``; returns (mean_seconds, last_result)."""
        result = None
        for _ in range(self.warmup):
            result = fn(*args, **kwargs)
        self.times = []
        for _ in range(self.repetitions):
            t0 = time.perf_counter()
            result = fn(*args, **kwargs)
            self.times.append(time.perf_counter() - t0)
        return self.mean, result

    @property
    def mean(self) -> float:
        if not self.times:
            raise ValueError("measure() has not been called")
        return sum(self.times) / len(self.times)

    @property
    def best(self) -> float:
        if not self.times:
            raise ValueError("measure() has not been called")
        return min(self.times)
