"""Shared utilities: timing, statistics."""

from .stats import geometric_mean, performance_profile, speedup, summarize
from .timers import RepeatTimer, Timer

__all__ = [
    "geometric_mean",
    "performance_profile",
    "speedup",
    "summarize",
    "RepeatTimer",
    "Timer",
]
