"""Small statistics helpers shared by the experiment harness.

The paper reports geometric-mean speedups (e.g. "average (geometric) speedup
factor of 1.35") and performance profiles (Figure 4).  Both are implemented
here so every experiment script computes them identically.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping, Sequence


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values.

    Raises
    ------
    ValueError
        If the sequence is empty or contains non-positive entries.
    """
    vals = list(values)
    if not vals:
        raise ValueError("geometric mean of empty sequence")
    if any(v <= 0 for v in vals):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def speedup(baseline: float, improved: float) -> float:
    """Speedup factor of ``improved`` over ``baseline`` (>1 means faster)."""
    if improved <= 0:
        raise ValueError("improved time must be positive")
    return baseline / improved


def performance_profile(
    times: Mapping[str, Sequence[float | None]],
) -> dict[str, list[float]]:
    """Compute the paper's Figure-4 performance profile.

    Parameters
    ----------
    times:
        ``algorithm -> per-instance running time``; ``None`` marks an
        instance the algorithm could not run ("too large" in the paper),
        which is plotted below zero there and mapped to ``-0.1`` here.

    Returns
    -------
    ``algorithm -> sorted list of t_best / t_algo ratios`` (ascending), one
    entry per instance.  A ratio of 1.0 means the algorithm was the fastest
    on that instance.
    """
    algos = list(times)
    if not algos:
        return {}
    n_instances = len(times[algos[0]])
    for a in algos:
        if len(times[a]) != n_instances:
            raise ValueError("all algorithms must cover the same instances")
    ratios: dict[str, list[float]] = {a: [] for a in algos}
    for i in range(n_instances):
        observed = [times[a][i] for a in algos if times[a][i] is not None]
        if not observed:
            continue
        best = min(observed)
        for a in algos:
            t = times[a][i]
            ratios[a].append(-0.1 if t is None else best / t)
    for a in algos:
        ratios[a].sort()
    return ratios


def summarize(values: Sequence[float]) -> dict[str, float]:
    """min/mean/max summary used in experiment reports."""
    if not values:
        raise ValueError("summarize of empty sequence")
    return {
        "min": min(values),
        "mean": sum(values) / len(values),
        "max": max(values),
    }
