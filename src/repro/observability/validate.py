"""Validate observability artifacts from the command line.

Used by the CI trace-smoke and bench-smoke steps::

    python -m repro.observability.validate trace.jsonl
    python -m repro.observability.validate trace.jsonl --metrics metrics.json
    python -m repro.observability.validate --bench BENCH_parcut.json

Exit code 0 when every named artifact validates, 1 otherwise (with the
schema violation on stderr).
"""

from __future__ import annotations

import argparse
import json
import sys

from .schema import (
    STATS_SCHEMA_VERSION,
    SchemaError,
    validate_bench_file,
    validate_trace_file,
)


def validate_metrics_file(path) -> dict:
    """Check a ``--metrics-json`` document written by the CLI."""
    with open(path, encoding="utf-8") as fh:
        payload = json.load(fh)
    for key in ("schema_version", "algorithm", "n", "m", "value", "seconds", "stats"):
        if key not in payload:
            raise SchemaError(f"metrics document missing {key!r}")
    if payload["schema_version"] != STATS_SCHEMA_VERSION:
        raise SchemaError(
            f"metrics schema_version is {payload['schema_version']!r}, "
            f"expected {STATS_SCHEMA_VERSION}"
        )
    return payload


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.observability.validate", description=__doc__
    )
    ap.add_argument("trace", nargs="?", help="JSONL trace file to validate")
    ap.add_argument("--metrics", help="metrics JSON document (CLI --metrics-json output)")
    ap.add_argument("--bench", help="BENCH_*.json benchmark record to validate")
    args = ap.parse_args(argv)
    if not (args.trace or args.metrics or args.bench):
        ap.error("nothing to validate: pass a trace file, --metrics, or --bench")

    try:
        if args.trace:
            summary = validate_trace_file(args.trace)
            print(
                f"{args.trace}: {summary['events']} events ok, "
                f"final lambda {summary['final_lambda']}"
            )
        if args.metrics:
            payload = validate_metrics_file(args.metrics)
            print(
                f"{args.metrics}: schema v{payload['schema_version']} ok, "
                f"value {payload['value']}"
            )
        if args.bench:
            payload = validate_bench_file(args.bench)
            print(
                f"{args.bench}: schema v{payload['schema_version']} ok, "
                f"{len(payload['records'])} records"
            )
    except (OSError, SchemaError, json.JSONDecodeError) as exc:
        print(f"validation failed: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
