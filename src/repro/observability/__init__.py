"""Structured observability: tracing, metrics, and record schemas.

The solvers are instrumented at *round/pass* granularity with an optional
:class:`Tracer` — round boundaries, λ̂ updates with provenance, contraction
ratios, per-worker events, executor degradations, and priority-queue
counter deltas — with an in-memory ring plus an optional JSONL sink.  When
no tracer is passed (the default) the instrumentation is a single ``None``
check per round, and the per-edge hot loops are untouched either way.

Entry points:

* :class:`Tracer` — create with ``Tracer()`` (ring only) or
  ``Tracer(sink=path)`` (ring + JSONL), pass as ``tracer=`` to
  ``minimum_cut`` / ``parallel_mincut`` / ``noi_mincut`` / ``viecut``.
* CLI: ``repro-mincut --trace PATH --metrics-json PATH``.
* Validation: :func:`~repro.observability.schema.validate_trace_file`,
  :func:`~repro.observability.schema.validate_bench_file`, or
  ``python -m repro.observability.validate`` (used by CI).

See ``docs/IMPLEMENTATION_NOTES.md`` §13 for the event taxonomy, the
stats schema v2 contract, and the overhead budget.
"""

from .schema import (
    BENCH_SCHEMA_VERSION,
    EVENT_KINDS,
    LAMBDA_PROVENANCE,
    PARCUT_PHASES,
    PARCUT_STATS_KEYS,
    STATS_SCHEMA_VERSION,
    SchemaError,
    validate_bench_file,
    validate_bench_payload,
    validate_event,
    validate_parcut_stats,
    validate_trace_events,
    validate_trace_file,
)
from .tracer import Tracer, jsonable

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "EVENT_KINDS",
    "LAMBDA_PROVENANCE",
    "PARCUT_PHASES",
    "PARCUT_STATS_KEYS",
    "STATS_SCHEMA_VERSION",
    "SchemaError",
    "Tracer",
    "jsonable",
    "validate_bench_file",
    "validate_bench_payload",
    "validate_event",
    "validate_parcut_stats",
    "validate_trace_events",
    "validate_trace_file",
]
