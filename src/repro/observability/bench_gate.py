"""Benchmark regression gate: compare a fresh bench run against a baseline.

CI regenerates each benchmark's ``BENCH_*.json`` and compares its headline
metric against the committed baseline::

    python -m repro.observability.bench_gate \\
        --baseline BENCH_parcut.json --candidate fresh/BENCH_parcut.json \\
        --metric vector_over_scalar_speedup_median

``--metric`` may be omitted when both payloads carry a ``headline_metric``
key naming their own headline — that is what lets CI gate every
``BENCH_*.json`` through one glob loop with zero per-benchmark YAML.

The tolerance policy is **warn-then-fail**, tuned for shared CI runners
where wall-clock metrics are noisy:

* ``candidate/baseline >= --warn-ratio`` (default 0.85): pass silently —
  up to 15% below baseline is indistinguishable from runner noise;
* ``--fail-ratio <= ratio < --warn-ratio``: pass, but emit a GitHub
  ``::warning`` annotation — the metric drifted beyond noise; two PRs in
  this band in a row deserve a look (and the baseline a refresh);
* ``ratio < --fail-ratio`` (default 0.7): exit 1 — a >30% drop through a
  noise-tolerant median is a real regression, not jitter.

Improvements never fail the gate; commit the regenerated baseline when a
speedup is intentional so the ratchet moves up.  Both files must validate
against the bench-record schema and agree on the ``benchmark`` name, so
the gate can never green-light a metric from the wrong benchmark.
"""

from __future__ import annotations

import argparse
import sys

from .schema import SchemaError, validate_bench_file


def compare(baseline: dict, candidate: dict, metric: str,
            warn_ratio: float, fail_ratio: float) -> tuple[str, float, str]:
    """Gate ``candidate[metric]`` against ``baseline[metric]``.

    Returns ``(verdict, ratio, message)`` with verdict one of
    ``"ok"``/``"warn"``/``"fail"``.  Raises :class:`SchemaError` when the
    payloads are not comparable (different benchmarks, missing or
    non-positive metric).
    """
    if baseline.get("benchmark") != candidate.get("benchmark"):
        raise SchemaError(
            f"benchmark mismatch: baseline is {baseline.get('benchmark')!r}, "
            f"candidate is {candidate.get('benchmark')!r}"
        )
    values = []
    for name, payload in (("baseline", baseline), ("candidate", candidate)):
        value = payload.get(metric)
        if not (isinstance(value, (int, float)) and value > 0):
            raise SchemaError(f"{name} metric {metric!r} not positive: {value!r}")
        values.append(float(value))
    base, cand = values
    ratio = cand / base
    message = (
        f"{candidate['benchmark']}: {metric} {cand:g} vs baseline {base:g} "
        f"(ratio {ratio:.3f}, warn < {warn_ratio:g}, fail < {fail_ratio:g})"
    )
    if ratio < fail_ratio:
        return "fail", ratio, message
    if ratio < warn_ratio:
        return "warn", ratio, message
    return "ok", ratio, message


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.observability.bench_gate", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    ap.add_argument("--baseline", required=True, help="committed BENCH_*.json")
    ap.add_argument("--candidate", required=True, help="freshly generated BENCH_*.json")
    ap.add_argument("--metric", default=None,
                    help="top-level metric key to compare (higher is better); "
                    "defaults to the payloads' own headline_metric")
    ap.add_argument("--warn-ratio", type=float, default=0.85,
                    help="warn below candidate/baseline of this (default: 0.85)")
    ap.add_argument("--fail-ratio", type=float, default=0.7,
                    help="fail below candidate/baseline of this (default: 0.7)")
    args = ap.parse_args(argv)
    if not 0 < args.fail_ratio <= args.warn_ratio:
        ap.error("require 0 < --fail-ratio <= --warn-ratio")

    try:
        baseline = validate_bench_file(args.baseline)
        candidate = validate_bench_file(args.candidate)
        metric = args.metric
        if metric is None:
            metric = candidate.get("headline_metric")
            if metric is None:
                raise SchemaError(
                    "no --metric given and candidate has no headline_metric"
                )
            if baseline.get("headline_metric") not in (None, metric):
                raise SchemaError(
                    f"headline_metric mismatch: baseline says "
                    f"{baseline.get('headline_metric')!r}, candidate says {metric!r}"
                )
        verdict, _ratio, message = compare(
            baseline, candidate, metric, args.warn_ratio, args.fail_ratio
        )
    except (OSError, SchemaError) as exc:
        print(f"bench gate error: {exc}", file=sys.stderr)
        return 1
    if verdict == "fail":
        print(f"bench gate FAIL: {message}", file=sys.stderr)
        return 1
    if verdict == "warn":
        # GitHub Actions annotation; plain noise elsewhere
        print(f"::warning title=bench regression::{message}")
        return 0
    print(f"bench gate ok: {message}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
