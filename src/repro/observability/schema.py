"""Event taxonomy and record schemas for the observability subsystem.

Three machine-readable contracts live here, each with a validator so CI and
downstream tooling (benchmark collectors, figure scripts, dashboards) can
consume solver output without key-existence guessing:

* **Trace events** (:data:`EVENT_KINDS`) — the structured records a
  :class:`~repro.observability.Tracer` emits.  Every event carries a
  strictly increasing ``seq``, a relative timestamp ``t`` (seconds since
  the tracer was created), and a ``kind`` from the taxonomy; λ̂ updates
  additionally carry a ``provenance`` from :data:`LAMBDA_PROVENANCE`
  naming which mechanism produced the bound.
* **Solver stats, schema v2** (:data:`STATS_SCHEMA_VERSION`,
  :data:`PARCUT_STATS_KEYS`) — :func:`repro.core.mincut.parallel_mincut`
  returns the *same* key set on every return path (including the
  disconnected-graph and two-vertex early exits), with
  ``stats["stats_schema"] == 2`` so consumers can branch on shape.
* **Benchmark records** (:data:`BENCH_SCHEMA_VERSION`) — every
  ``BENCH_*.json`` file written by the benchmark suite is an object with
  ``schema_version`` / ``benchmark`` / ``graph`` / ``records``, and every
  record names its ``variant`` / ``kernel`` / ``executor`` — so records
  stay machine-parseable across PRs.
"""

from __future__ import annotations

import json

#: version of the ``MinCutResult.stats`` contract documented here.  v1 was
#: the historical ad-hoc dict whose keys differed between return paths;
#: v2 is the normalized schema (every path emits every key).
STATS_SCHEMA_VERSION = 2

#: version of the ``BENCH_*.json`` record contract.
BENCH_SCHEMA_VERSION = 1

#: every event kind a tracer may emit.
EVENT_KINDS = frozenset(
    {
        "solve_start",  # once, before any work: algorithm, n, m, config
        "solve_end",  # once, last event: final value, rounds, seconds
        "round_start",  # per ParCut/NOI round: round index, n, m, λ̂ in
        "round_end",  # per round: λ̂ out, marks, contraction ratio, PQ deltas
        "lambda_update",  # best-known bound improved: value + provenance
        "viecut_start",  # VieCut seeding began
        "viecut_level",  # one VieCut multilevel round: n before/after
        "viecut_end",  # VieCut seeding done: value, levels, remnant size
        "capforest_pass",  # one *sequential* CAPFOREST pass (incl. fallbacks)
        "parallel_pass",  # one parallel CAPFOREST pass: work, λ̂, marks
        "kernel_fallback",  # "compiled" requested but unavailable: ran vector
        "worker_report",  # per-worker counters from a parallel pass
        "worker_event",  # a worker was lost/crashed/timed out/corrupt
        "degradation",  # executor stepped down the ladder
        # -- engine-level kinds (repro.engine): the request-granularity view
        "engine_start",  # once per engine: pool size, cache size, start method
        "engine_stop",  # once, on close: request counters, cache hit/miss
        "request_start",  # per submitted request: digest, algorithm, n, m
        "request_end",  # per request: status (ok/cached/timeout/...), seconds
        "cache_hit",  # a request was served from the result cache
        "pool_recycle",  # a pool worker was respawned, or the pool abandoned
        # -- dynamic-graph kinds (repro.dynamic): the update-stream view
        "graph_update",  # an edge batch was applied: digests, sizes, weights
        "warm_solve",  # a warm re-solve ran: mode, seed bound, seconds
        # -- service-level kinds (repro.service): the network front-end view
        "service_start",  # once per server: host, port, admission budgets
        "service_stop",  # once, on shutdown: request counters
        "request_admitted",  # an HTTP request passed admission control
        "request_shed",  # an HTTP request was load-shed: shed_reason, queue_depth
        "request_done",  # an HTTP request finished: status code, seconds, retries
        "client_disconnect",  # a client vanished mid-request; work was cancelled
        "drain_begin",  # graceful drain started: inflight count at entry
        "drain_end",  # graceful drain finished: drained/cancelled counts
        # -- cactus kinds (repro.cactus): the all-min-cuts view
        "cactus_build_start",  # construction began: n, m, lam
        "cactus_build_end",  # done: contracted n, cut/node/cycle counts, seconds
        "cactus_query",  # a query ran on the structure: query name + answer
        # -- tree-packing kinds (repro.treepack): the karger-nlt view
        "treepack_round",  # one pack+evaluate round: packing bound, λ̂, certificate
        "treepack_tree",  # one tree examined: 1-/2-respecting minima, best value
    }
)

#: where a ``lambda_update`` bound came from.  ``disconnected`` covers the
#: value-0 early return (one component versus the rest); ``treepack`` is a
#: 1- or 2-respecting cut of a packed spanning tree (``karger-nlt``); the
#: other five are the mechanisms of Algorithm 2.
LAMBDA_PROVENANCE = (
    "viecut",
    "scan-cut",
    "min-degree",
    "seq-fallback",
    "sw-fallback",
    "disconnected",
    "treepack",
)

#: the wall-time phases profiled by ``parallel_mincut`` — always all
#: present in ``stats["phase_seconds"]`` (0.0 when a phase never ran).
PARCUT_PHASES = ("viecut", "capforest", "seq_fallback", "sw_fallback", "contract")

#: canonical key set of ``parallel_mincut(...).stats`` under schema v2.
#: Every return path emits exactly these keys.
PARCUT_STATS_KEYS = frozenset(
    {
        "stats_schema",
        "pq_kind",
        "executor",
        "kernel",
        "kernel_resolved",
        "kernel_fallback",
        "workers",
        "rounds",
        "seq_fallback_rounds",
        "sw_fallback_rounds",
        "total_work",
        "makespan_work",
        "edges_scanned",
        "vertices_scanned",
        "pq_pushes",
        "pq_updates",
        "pq_skipped_updates",
        "pq_pops",
        "viecut_value",
        "worker_events",
        "degradations",
        "start_method",
        "final_executor",
        "modeled_speedup",
        "contraction_ratios",
        "phase_seconds",
    }
)


#: the wall-time phases profiled by ``karger_nlt_mincut`` — always all
#: present in ``stats["phase_seconds"]`` (0.0 when a phase never ran).
TREEPACK_PHASES = ("packing", "dp")

#: canonical key set of ``karger_nlt_mincut(...).stats`` under schema v2.
#: Every return path (including disconnected early exit) emits exactly
#: these keys.
TREEPACK_STATS_KEYS = frozenset(
    {
        "stats_schema",
        "seed",
        "rounds",
        "trees_packed",
        "trees_evaluated",
        "distinct_trees",
        "packing_value_lb",
        "certified",
        "min_degree_bound",
        "one_respect_min",
        "two_respect_min",
        "executor",
        "final_executor",
        "workers",
        "worker_events",
        "degradations",
        "phase_seconds",
    }
)


class SchemaError(ValueError):
    """A trace event, stats dict, or benchmark record violates its schema."""


def validate_event(event: dict) -> dict:
    """Check one trace event against the taxonomy; return it unchanged."""
    if not isinstance(event, dict):
        raise SchemaError(f"event is not an object: {event!r}")
    for key in ("seq", "t", "kind"):
        if key not in event:
            raise SchemaError(f"event missing required key {key!r}: {event!r}")
    kind = event["kind"]
    if kind not in EVENT_KINDS:
        raise SchemaError(f"unknown event kind {kind!r}")
    if kind == "lambda_update":
        if "value" not in event:
            raise SchemaError(f"lambda_update without value: {event!r}")
        prov = event.get("provenance")
        if prov not in LAMBDA_PROVENANCE:
            raise SchemaError(
                f"lambda_update provenance {prov!r} not in {LAMBDA_PROVENANCE}"
            )
    return event


def validate_trace_events(events) -> dict:
    """Validate an iterable of trace events (already-parsed dicts).

    Checks every event against the taxonomy, requires strictly increasing
    ``seq``, and — when a ``solve_end`` event is present — requires its
    ``value`` to equal the last ``lambda_update``'s value (the λ̂
    trajectory must land on the reported minimum cut).

    Returns a summary dict: event count, count per kind, the λ̂ trajectory,
    and the final λ̂.
    """
    last_seq = None
    by_kind: dict[str, int] = {}
    lambda_trajectory: list[int] = []
    solve_end_value = None
    count = 0
    for ev in events:
        validate_event(ev)
        count += 1
        if last_seq is not None and ev["seq"] <= last_seq:
            raise SchemaError(
                f"event seq not strictly increasing: {ev['seq']} after {last_seq}"
            )
        last_seq = ev["seq"]
        by_kind[ev["kind"]] = by_kind.get(ev["kind"], 0) + 1
        if ev["kind"] == "lambda_update":
            lambda_trajectory.append(ev["value"])
        elif ev["kind"] == "solve_end":
            solve_end_value = ev.get("value")
    if count == 0:
        raise SchemaError("trace contains no events")
    if solve_end_value is not None and lambda_trajectory:
        if solve_end_value != lambda_trajectory[-1]:
            raise SchemaError(
                f"solve_end value {solve_end_value} != final lambda_update "
                f"{lambda_trajectory[-1]}"
            )
    return {
        "events": count,
        "by_kind": by_kind,
        "lambda_trajectory": lambda_trajectory,
        "final_lambda": lambda_trajectory[-1] if lambda_trajectory else None,
    }


def validate_trace_file(path) -> dict:
    """Parse and validate one JSONL trace file; return the summary."""

    def lines():
        with open(path, encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    yield json.loads(line)
                except json.JSONDecodeError as exc:
                    raise SchemaError(f"{path}:{lineno}: not valid JSON: {exc}") from None

    return validate_trace_events(lines())


def validate_parcut_stats(stats: dict) -> dict:
    """Check a ``parallel_mincut`` stats dict against schema v2."""
    if not isinstance(stats, dict):
        raise SchemaError("stats is not a dict")
    if stats.get("stats_schema") != STATS_SCHEMA_VERSION:
        raise SchemaError(
            f"stats_schema is {stats.get('stats_schema')!r}, "
            f"expected {STATS_SCHEMA_VERSION}"
        )
    missing = PARCUT_STATS_KEYS - set(stats)
    if missing:
        raise SchemaError(f"stats missing keys: {sorted(missing)}")
    phases = stats["phase_seconds"]
    if set(phases) != set(PARCUT_PHASES):
        raise SchemaError(
            f"phase_seconds keys {sorted(phases)} != {sorted(PARCUT_PHASES)}"
        )
    return stats


def validate_treepack_stats(stats: dict) -> dict:
    """Check a ``karger_nlt_mincut`` stats dict against schema v2."""
    if not isinstance(stats, dict):
        raise SchemaError("stats is not a dict")
    if stats.get("stats_schema") != STATS_SCHEMA_VERSION:
        raise SchemaError(
            f"stats_schema is {stats.get('stats_schema')!r}, "
            f"expected {STATS_SCHEMA_VERSION}"
        )
    missing = TREEPACK_STATS_KEYS - set(stats)
    if missing:
        raise SchemaError(f"stats missing keys: {sorted(missing)}")
    extra = set(stats) - TREEPACK_STATS_KEYS
    if extra:
        raise SchemaError(f"stats has unknown keys: {sorted(extra)}")
    phases = stats["phase_seconds"]
    if set(phases) != set(TREEPACK_PHASES):
        raise SchemaError(
            f"phase_seconds keys {sorted(phases)} != {sorted(TREEPACK_PHASES)}"
        )
    return stats


#: keys every ``BENCH_*.json`` top-level object must carry.
BENCH_TOP_KEYS = ("schema_version", "benchmark", "graph", "records")

#: keys every entry in ``records`` must carry.
BENCH_RECORD_KEYS = ("variant", "kernel", "executor", "wall_s")


def validate_bench_payload(payload: dict) -> dict:
    """Check one benchmark JSON document against the bench-record schema.

    ``headline_metric``, when present, must name a numeric top-level key —
    it is what the generic bench gate compares when no ``--metric`` is
    passed, so a dangling or non-numeric pointer is a schema error.
    """
    if not isinstance(payload, dict):
        raise SchemaError("benchmark payload is not an object")
    for key in BENCH_TOP_KEYS:
        if key not in payload:
            raise SchemaError(f"benchmark payload missing {key!r}")
    headline = payload.get("headline_metric")
    if headline is not None:
        if not isinstance(headline, str) or headline not in payload:
            raise SchemaError(
                f"headline_metric {headline!r} does not name a top-level key"
            )
        if not isinstance(payload[headline], (int, float)) or isinstance(
            payload[headline], bool
        ):
            raise SchemaError(
                f"headline_metric {headline!r} points at a non-numeric value: "
                f"{payload[headline]!r}"
            )
    if payload["schema_version"] != BENCH_SCHEMA_VERSION:
        raise SchemaError(
            f"benchmark schema_version is {payload['schema_version']!r}, "
            f"expected {BENCH_SCHEMA_VERSION}"
        )
    records = payload["records"]
    if not isinstance(records, list) or not records:
        raise SchemaError("benchmark payload has no records")
    for i, rec in enumerate(records):
        for key in BENCH_RECORD_KEYS:
            if key not in rec:
                raise SchemaError(f"record {i} missing {key!r}: {rec!r}")
        if not (isinstance(rec["wall_s"], (int, float)) and rec["wall_s"] > 0):
            raise SchemaError(f"record {i} wall_s not positive: {rec['wall_s']!r}")
    return payload


def validate_bench_file(path) -> dict:
    """Parse and validate one ``BENCH_*.json`` file; return the payload."""
    with open(path, encoding="utf-8") as fh:
        try:
            payload = json.load(fh)
        except json.JSONDecodeError as exc:
            raise SchemaError(f"{path}: not valid JSON: {exc}") from None
    return validate_bench_payload(payload)
