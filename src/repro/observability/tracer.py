"""Structured tracing for the minimum-cut solvers.

A :class:`Tracer` collects span/event records — round boundaries, λ̂
updates with provenance, contraction ratios, worker events, degradations,
priority-queue counter deltas — into an in-memory ring buffer, optionally
mirroring every event to a JSONL sink (one JSON object per line).

Design constraints, in order:

1. **Zero cost when absent.**  Every instrumented function takes
   ``tracer: Tracer | None = None`` and emits only at *round/pass*
   granularity behind a single ``if tracer is not None`` — never per edge
   or per queue operation, so the relaxation hot loops are untouched and a
   ``tracer=None`` run does no added per-edge work (guarded by
   ``tests/test_observability.py``).
2. **Bounded memory.**  The ring keeps the most recent ``ring_size``
   events; the JSONL sink, when given, receives all of them.
3. **Machine-checkable.**  Every event satisfies the taxonomy in
   :mod:`repro.observability.schema`; λ̂ updates are validated against
   :data:`~repro.observability.schema.LAMBDA_PROVENANCE` at emit time, so
   a typo'd provenance fails the emitting test instead of poisoning traces.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque

import numpy as np

from .schema import EVENT_KINDS, LAMBDA_PROVENANCE


def jsonable(obj):
    """``json.dumps`` default: make numpy scalars/arrays serializable."""
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    if isinstance(obj, np.bool_):
        return bool(obj)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    raise TypeError(f"not JSON serializable: {type(obj).__name__}")


class Tracer:
    """Collects structured solver events; see module docstring.

    Parameters
    ----------
    ring_size:
        Number of most-recent events kept in memory (:meth:`events`).
    sink:
        ``None`` (ring only), a path to open as a JSONL file, or an
        already-open writable text file object (not closed by
        :meth:`close` unless the tracer opened it itself).
    """

    def __init__(self, ring_size: int = 4096, sink=None) -> None:
        self._ring: deque = deque(maxlen=ring_size)
        self._seq = 0
        self._t0 = time.perf_counter()
        self._lock = threading.Lock()
        self._owns_sink = False
        if sink is None or hasattr(sink, "write"):
            self._sink = sink
        else:
            self._sink = open(sink, "w", encoding="utf-8")
            self._owns_sink = True

    # -- emission -----------------------------------------------------------

    def emit(self, kind: str, **fields) -> dict:
        """Record one event; returns the event dict."""
        if kind not in EVENT_KINDS:
            raise ValueError(f"unknown event kind {kind!r}")
        with self._lock:
            ev = {
                "seq": self._seq,
                "t": round(time.perf_counter() - self._t0, 6),
                "kind": kind,
            }
            ev.update(fields)
            self._seq += 1
            self._ring.append(ev)
            if self._sink is not None:
                self._sink.write(json.dumps(ev, default=jsonable) + "\n")
        return ev

    def lambda_update(self, value, provenance: str, **fields) -> dict:
        """Record a λ̂ improvement with its provenance (taxonomy-checked)."""
        if provenance not in LAMBDA_PROVENANCE:
            raise ValueError(
                f"unknown lambda provenance {provenance!r}; "
                f"expected one of {LAMBDA_PROVENANCE}"
            )
        return self.emit("lambda_update", value=int(value), provenance=provenance, **fields)

    # -- inspection ---------------------------------------------------------

    def events(self, kind: str | None = None) -> list[dict]:
        """Events currently in the ring (optionally filtered by kind)."""
        with self._lock:
            evs = list(self._ring)
        if kind is None:
            return evs
        return [e for e in evs if e["kind"] == kind]

    def last(self, kind: str) -> dict | None:
        """Most recent event of ``kind`` still in the ring, or ``None``."""
        with self._lock:
            for ev in reversed(self._ring):
                if ev["kind"] == kind:
                    return ev
        return None

    @property
    def n_emitted(self) -> int:
        """Total events emitted (including any evicted from the ring)."""
        return self._seq

    def summary(self) -> dict:
        """Compact digest for experiment records (``trace_summary``)."""
        by_kind: dict[str, int] = {}
        trajectory: list[dict] = []
        with self._lock:
            evs = list(self._ring)
        for ev in evs:
            by_kind[ev["kind"]] = by_kind.get(ev["kind"], 0) + 1
        for ev in evs:
            if ev["kind"] == "lambda_update":
                trajectory.append(
                    {"t": ev["t"], "value": ev["value"], "provenance": ev["provenance"]}
                )
        return {
            "events": self._seq,
            "by_kind": by_kind,
            "lambda_trajectory": trajectory,
            "final_lambda": trajectory[-1]["value"] if trajectory else None,
        }

    # -- lifecycle ----------------------------------------------------------

    def flush(self) -> None:
        if self._sink is not None:
            self._sink.flush()

    def close(self) -> None:
        """Flush and (if owned) close the JSONL sink; the ring survives."""
        if self._sink is not None:
            self._sink.flush()
            if self._owns_sink:
                self._sink.close()
            self._sink = None

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Tracer(events={self._seq}, ring={len(self._ring)})"
