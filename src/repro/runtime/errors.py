"""Structured failure taxonomy for the supervised execution runtime.

Every parallel code path in this package (parallel CAPFOREST, parallel
contraction, VieCut label propagation, parallel Matula) reports failures
through these types instead of hanging or raising bare ``ValueError``s.
The hierarchy is deliberately shallow:

``RuntimeFault``
    Base class — "the execution substrate failed", as opposed to "the
    input was invalid" (``ValueError``) or "the algorithm is wrong"
    (would be a bug).  Catching it is how callers opt into the
    degradation ladder (:func:`~repro.runtime.supervisor.call_with_degradation`).

``WorkerCrashed`` / ``WorkerTimeout``
    One specific worker died (nonzero exit code, or exited without
    reporting) or blew its deadline.  Losing a worker's contraction marks
    is *safe* — Lemma 3.2(1): unions commute and any subset of marks is
    still exact — so these are raised only when the caller asked for
    fail-fast semantics (``on_worker_failure="fail"``) or when no worker
    survived at all.

``ExecutorUnavailable``
    An entire executor produced nothing usable (every worker lost, or the
    backend cannot start).  Carries the per-worker event dicts so callers
    and the CLI can distinguish timeout-dominated from crash-dominated
    losses.

``NoProgressError``
    A watchdog tripped: a contraction round failed to shrink the graph, or
    a scan popped more vertices than exist.  Without it the ParCut round
    loop (and a corrupted scan) would spin forever.
"""

from __future__ import annotations


class RuntimeFault(RuntimeError):
    """Base class for execution-substrate failures (not input errors)."""


class WorkerCrashed(RuntimeFault):
    """A worker process/thread died before reporting its result.

    ``exit_code`` is the process exit code (``None`` for thread workers,
    whose "crash" is an uncaught exception captured by the drain wrapper).
    """

    def __init__(self, worker_id: int, exit_code: int | None = None, detail: str = "") -> None:
        self.worker_id = worker_id
        self.exit_code = exit_code
        self.detail = detail
        msg = f"worker {worker_id} crashed"
        if exit_code is not None:
            msg += f" (exit code {exit_code})"
        if detail:
            msg += f": {detail}"
        super().__init__(msg)


class WorkerTimeout(RuntimeFault):
    """A worker failed to report within its deadline.

    ``worker_id`` is ``None`` when no worker was ever involved — e.g. a
    request whose deadline expired while still queued; such callers supply
    their own ``message`` with request context instead of the per-worker
    default.
    """

    def __init__(
        self, worker_id: int | None, deadline: float, message: str | None = None
    ) -> None:
        self.worker_id = worker_id
        self.deadline = deadline
        super().__init__(
            message or f"worker {worker_id} exceeded its {deadline:.3g}s deadline"
        )


class ExecutorUnavailable(RuntimeFault):
    """An executor produced no usable results (all workers lost).

    ``events`` is the list of per-worker event dicts recorded by the
    supervisor (see :mod:`~repro.runtime.supervisor`); ``dominant_kind``
    summarises them so callers can map the loss to a failure mode.
    """

    def __init__(self, executor: str, reason: str = "", events: list[dict] | None = None) -> None:
        self.executor = executor
        self.reason = reason
        self.events = events or []
        msg = f"executor {executor!r} unavailable"
        if reason:
            msg += f": {reason}"
        super().__init__(msg)

    @property
    def dominant_kind(self) -> str:
        """``"timeout"`` if any worker timed out, else ``"crashed"``."""
        kinds = {e.get("kind") for e in self.events}
        return "timeout" if "timeout" in kinds else "crashed"


class NoProgressError(RuntimeFault):
    """A progress watchdog tripped (stalled round loop or runaway scan)."""

    def __init__(self, detail: str) -> None:
        super().__init__(f"no progress: {detail}")
