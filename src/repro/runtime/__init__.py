"""Supervised execution runtime: supervision, fault injection, degradation.

Every parallel code path in the package routes its worker management
through this subsystem so that no executor can hang the coordinator, every
failure is observable as a structured event, and a failing executor
degrades ``processes → threads → serial`` instead of aborting (Lemma
3.2(1) makes dropped workers safe; the sequential fallback guarantees
progress when everything else dies).  See the module docstrings of
:mod:`~repro.runtime.supervisor`, :mod:`~repro.runtime.faults` and
:mod:`~repro.runtime.errors` for the pieces.
"""

from .errors import (
    ExecutorUnavailable,
    NoProgressError,
    RuntimeFault,
    WorkerCrashed,
    WorkerTimeout,
)
from .faults import FaultClock, FaultPlan, WorkerFault
from .supervisor import (
    DEFAULT_TIMEOUT,
    DEGRADATION_LADDER,
    SupervisedOutcome,
    call_with_degradation,
    raise_for_events,
    supervise_processes,
    worker_event,
)

__all__ = [
    "RuntimeFault",
    "WorkerCrashed",
    "WorkerTimeout",
    "ExecutorUnavailable",
    "NoProgressError",
    "FaultPlan",
    "WorkerFault",
    "FaultClock",
    "DEFAULT_TIMEOUT",
    "DEGRADATION_LADDER",
    "SupervisedOutcome",
    "call_with_degradation",
    "raise_for_events",
    "supervise_processes",
    "worker_event",
]
