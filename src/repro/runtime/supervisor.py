"""Worker supervision for the ``processes`` executor + the degradation ladder.

The original process executor did ``results = [out.get() for _ in procs]``
— one crashed or wedged worker and the coordinator blocked forever.  The
supervisor replaces that with a bounded collection loop:

* every ``out.get`` carries a timeout (poll interval), so the loop always
  regains control;
* between polls each missing worker's ``Process.exitcode`` is inspected —
  a nonzero exit is recorded as a *crashed* event immediately, a clean
  exit with no payload becomes a *lost* event after a short grace period
  (the queue feeder thread may still be flushing);
* an overall deadline (default :data:`DEFAULT_TIMEOUT`, a backstop so no
  run can hang even when the caller passes no timeout) converts the
  remaining workers into *timeout* events and terminates them;
* payloads are sanitised before they are merged — a worker reporting
  out-of-range contraction pairs is recorded as *corrupt* and its payload
  discarded, never unioned.

Losing workers is safe by the paper's Lemma 3.2(1): contraction marks are
unions, unions commute, and any *subset* of safe marks is still safe — the
merged result of the survivors is exact, merely (potentially) slower to
converge.  Only when *no* worker survives does the supervisor's caller
raise :class:`~repro.runtime.errors.ExecutorUnavailable`, which the
degradation ladder (``processes → threads → serial``) turns into a retry
on the next-simpler executor.
"""

from __future__ import annotations

import queue
import time
from dataclasses import dataclass, field

from .errors import ExecutorUnavailable, NoProgressError, RuntimeFault, WorkerCrashed, WorkerTimeout

#: backstop deadline applied when the caller supplies no timeout — generous
#: enough for any in-repo workload, finite so nothing can hang forever.
DEFAULT_TIMEOUT = 600.0

#: how often the collection loop wakes to check worker liveness
POLL_INTERVAL = 0.05

#: grace period for a cleanly-exited worker whose payload has not yet been
#: drained from the queue (the feeder thread flushes asynchronously)
EXIT_GRACE = 0.5

#: executor downgrade chain; ``None`` means nowhere left to go
DEGRADATION_LADDER: dict[str, str | None] = {
    "processes": "threads",
    "threads": "serial",
    "serial": None,
}


def worker_event(worker_id: int, kind: str, **detail) -> dict:
    """A structured per-worker event for result ``stats``/``events`` lists."""
    ev = {"worker_id": worker_id, "kind": kind}
    ev.update(detail)
    return ev


@dataclass
class SupervisedOutcome:
    """What the supervisor salvaged from one process fan-out."""

    #: validated payloads, keyed by worker id
    results: dict[int, tuple] = field(default_factory=dict)
    #: structured events for every worker that did not report cleanly
    events: list[dict] = field(default_factory=list)

    @property
    def all_lost(self) -> bool:
        return not self.results


def _validate_payload(payload, n: int, n_workers: int) -> tuple[int, list, dict]:
    """Sanitise one worker payload; raise ``ValueError`` on corruption.

    Merging is a sequence of union–find unions, so the only way a bad
    payload can poison the result is through its pair list — every pair
    must be a valid vertex pair.  ``pairs`` may be ``None``: the sentinel
    meaning the pairs travelled through the shared-memory return buffer
    instead of the queue (the coordinator range-checks that buffer row
    itself before merging).  The report dict only feeds statistics, but
    its fields are type-checked too so a mangled payload cannot crash the
    coordinator later.
    """
    if not isinstance(payload, tuple) or len(payload) != 3:
        raise ValueError(f"malformed payload (expected 3-tuple, got {type(payload).__name__})")
    worker_id, pairs, rep = payload
    if not isinstance(worker_id, int) or not (0 <= worker_id < n_workers):
        raise ValueError(f"worker id {worker_id!r} out of range")
    for pair in pairs if pairs is not None else ():
        if len(pair) != 2:
            raise ValueError(f"worker {worker_id}: malformed pair {pair!r}")
        u, v = pair
        if not (0 <= int(u) < n and 0 <= int(v) < n):
            raise ValueError(f"worker {worker_id}: pair ({u}, {v}) out of range for n={n}")
    if not isinstance(rep, dict):
        raise ValueError(f"worker {worker_id}: report is not a dict")
    return worker_id, pairs, rep


def supervise_processes(
    procs,
    out,
    *,
    n: int,
    timeout: float | None = None,
    poll_interval: float = POLL_INTERVAL,
) -> SupervisedOutcome:
    """Collect one payload per process in ``procs`` without ever hanging.

    ``procs`` is indexed by worker id; ``out`` is a ``multiprocessing.Queue``
    whose ``get`` supports a timeout; ``n`` is the vertex count used to
    validate contraction pairs.  Returns the surviving payloads plus one
    event per lost worker.  Always terminates and joins every process
    before returning.
    """
    budget = DEFAULT_TIMEOUT if timeout is None else timeout
    deadline = time.monotonic() + budget
    outcome = SupervisedOutcome()
    pending = set(range(len(procs)))
    exited_at: dict[int, float] = {}

    def accept(payload) -> None:
        try:
            worker_id, pairs, rep = _validate_payload(payload, n, len(procs))
        except (ValueError, TypeError) as exc:
            wid = payload[0] if isinstance(payload, tuple) and payload else -1
            wid = wid if isinstance(wid, int) else -1
            outcome.events.append(worker_event(wid, "corrupt", detail=str(exc)))
            pending.discard(wid)
            return
        outcome.results[worker_id] = (worker_id, pairs, rep)
        pending.discard(worker_id)

    try:
        while pending:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                for wid in sorted(pending):
                    outcome.events.append(worker_event(wid, "timeout", deadline_s=budget))
                break
            try:
                accept(out.get(timeout=min(poll_interval, remaining)))
                continue
            except queue.Empty:
                pass
            now = time.monotonic()
            for wid in sorted(pending):
                code = procs[wid].exitcode
                if code is None:
                    continue
                if code != 0:
                    outcome.events.append(worker_event(wid, "crashed", exit_code=code))
                    pending.discard(wid)
                elif now - exited_at.setdefault(wid, now) > EXIT_GRACE:
                    # clean exit, queue drained, grace elapsed: payload lost
                    outcome.events.append(worker_event(wid, "lost", exit_code=0))
                    pending.discard(wid)
    finally:
        for pr in procs:
            if pr.is_alive():
                pr.terminate()
        for pr in procs:
            pr.join(timeout=5.0)
        out.close()
    return outcome


def raise_for_events(executor: str, events: list[dict]):
    """Raise the most specific fault for a fatal (or fail-fast) event set."""
    timeouts = [e for e in events if e.get("kind") == "timeout"]
    crashes = [e for e in events if e.get("kind") in ("crashed", "lost", "corrupt")]
    if timeouts and not crashes:
        ev = timeouts[0]
        raise WorkerTimeout(ev["worker_id"], ev.get("deadline_s", 0.0))
    if crashes:
        ev = crashes[0]
        raise WorkerCrashed(ev["worker_id"], ev.get("exit_code"), ev.get("detail", ev["kind"]))
    raise ExecutorUnavailable(executor, "no workers reported", events)


def call_with_degradation(
    call,
    executor: str,
    *,
    policy: str = "degrade",
    on_degrade=None,
    tracer=None,
):
    """Run ``call(executor)``, stepping down the ladder on executor faults.

    ``call`` is retried on the next-simpler executor each time it raises a
    :class:`RuntimeFault` (other than :class:`NoProgressError`, which
    signals an algorithmic stall, not an executor problem).  Retries are
    capped by the ladder length, so the call runs at most three times.
    ``on_degrade(from_executor, to_executor, exc)`` is invoked before each
    retry — callers use it to record the event in their ``stats``.

    ``tracer`` (optional :class:`repro.observability.Tracer`) receives one
    structured ``degradation`` event per ladder step, in addition to the
    ``on_degrade`` callback.

    Returns ``(result, executor_used)`` so callers can stay degraded for
    subsequent rounds instead of re-paying the failure each time.
    """
    if policy not in ("degrade", "fail"):
        raise ValueError(f"unknown degradation policy {policy!r}")
    while True:
        try:
            return call(executor), executor
        except NoProgressError:
            raise
        except RuntimeFault as exc:
            nxt = DEGRADATION_LADDER.get(executor)
            if policy != "degrade" or nxt is None:
                raise
            if on_degrade is not None:
                on_degrade(executor, nxt, exc)
            if tracer is not None:
                tracer.emit(
                    "degradation",
                    stage="capforest",
                    from_executor=executor,
                    to_executor=nxt,
                    reason=str(exc),
                )
            executor = nxt
