"""Deterministic fault injection for the supervised execution runtime.

Supervisor behaviour (crash detection, deadline enforcement, partial-result
merging, the degradation ladder) must be unit-testable without relying on
real nondeterministic crashes, so every parallel worker entry point accepts
an optional :class:`FaultPlan` describing exactly which workers fail, how,
and when.  A plan is inert in production (the default is ``None``) and the
injection points are a single ``if`` per worker, so the harness costs
nothing when unused.

Fault kinds
-----------
``"crash"``
    Process workers call ``os._exit(exit_code)`` after ``after_pops`` queue
    pops — a hard kill: no result is enqueued and the exit code is nonzero.
    Thread and serial workers raise :class:`~repro.runtime.errors.WorkerCrashed`
    inside the worker (captured by the drain wrapper / coordinator), which
    abandons the rest of their scan.
``"hang"``
    The worker sleeps for ``delay`` seconds (default: effectively forever)
    after ``after_pops`` pops — a wedged worker the supervisor must time
    out.  Process executor only (threads cannot be killed).
``"delay"``
    The worker sleeps ``delay`` seconds once, then continues normally —
    exercises supervisor patience (the result must still be collected).
``"drop_result"``
    The worker completes its scan but exits cleanly *without* enqueueing a
    result — a lost-message failure distinct from a crash (exit code 0).
``"corrupt_pairs"``
    The worker reports out-of-range contraction pairs — the supervisor
    must reject the payload rather than poison the merged union–find.

All faults are keyed by worker id, so a plan is deterministic given the
worker numbering (worker ``i`` scans from the ``i``-th start vertex).
"""

from __future__ import annotations

from dataclasses import dataclass, field

FAULT_KINDS = ("crash", "hang", "delay", "drop_result", "corrupt_pairs")

#: sleep used by ``"hang"`` when no delay is given — far beyond any test
#: deadline, short enough that a leaked worker cannot outlive CI.
HANG_SLEEP = 3600.0


@dataclass(frozen=True)
class WorkerFault:
    """One worker's scripted failure."""

    kind: str
    #: trigger after this many priority-queue pops (0 = before the first)
    after_pops: int = 0
    #: sleep length for ``"hang"``/``"delay"`` (``"hang"`` default: HANG_SLEEP)
    delay: float | None = None
    #: process exit code for ``"crash"``
    exit_code: int = 70

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}")

    @property
    def sleep_seconds(self) -> float:
        if self.delay is not None:
            return self.delay
        return HANG_SLEEP if self.kind == "hang" else 0.0


@dataclass(frozen=True)
class FaultPlan:
    """Which workers fail, keyed by worker id.

    ``executors`` limits the plan to specific executors — e.g. a plan that
    kills every process worker but lets the degraded ``threads`` retry run
    clean uses ``executors=("processes",)``.
    """

    faults: dict[int, WorkerFault] = field(default_factory=dict)
    executors: tuple[str, ...] = ("processes", "threads", "serial")

    def for_worker(self, worker_id: int, executor: str) -> WorkerFault | None:
        if executor not in self.executors:
            return None
        return self.faults.get(worker_id)

    @classmethod
    def kill(
        cls,
        worker_ids,
        *,
        after_pops: int = 0,
        executors: tuple[str, ...] = ("processes", "threads", "serial"),
    ) -> "FaultPlan":
        """Crash each listed worker after ``after_pops`` pops."""
        return cls(
            {i: WorkerFault("crash", after_pops=after_pops) for i in worker_ids},
            executors=executors,
        )

    @classmethod
    def hang(
        cls,
        worker_ids,
        *,
        after_pops: int = 0,
        delay: float | None = None,
        executors: tuple[str, ...] = ("processes",),
    ) -> "FaultPlan":
        """Wedge each listed worker (processes only — threads can't be killed)."""
        return cls(
            {i: WorkerFault("hang", after_pops=after_pops, delay=delay) for i in worker_ids},
            executors=executors,
        )


class FaultClock:
    """Per-worker pop counter that fires a :class:`WorkerFault` on schedule.

    The worker loop calls :meth:`tick` once per priority-queue pop; the
    method returns the fault when its trigger count is reached (exactly
    once), else ``None``.  Counting pops — rather than wall time — is what
    makes injected failures deterministic.
    """

    __slots__ = ("fault", "pops", "fired")

    def __init__(self, fault: WorkerFault | None) -> None:
        self.fault = fault
        self.pops = 0
        self.fired = False

    def tick(self) -> WorkerFault | None:
        if self.fault is None or self.fired:
            return None
        if self.pops >= self.fault.after_pops:
            self.fired = True
            return self.fault
        self.pops += 1
        return None
