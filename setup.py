"""Legacy setup shim.

``pip install -e .`` needs the ``wheel`` package (setuptools < 70 shells
out to ``bdist_wheel`` even for metadata); on the fully offline machines
this project targets, ``wheel`` may be unavailable.  This shim keeps two
fallbacks working without it:

    python setup.py develop        # editable install, no wheel required
    python setup.py install

All project metadata lives in ``pyproject.toml``; this file adds nothing.
"""

from setuptools import setup

setup()
