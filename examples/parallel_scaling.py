#!/usr/bin/env python3
"""Parallel CAPFOREST scaling — Figure 5 in miniature.

Runs ParCut at increasing worker counts on one web-like k-core instance and
reports wall-clock time (process executor: real parallelism) and the
modeled speedup (total CAPFOREST work / busiest worker's work — the load
balance the paper's near-linear region growth delivers).

Run:  python examples/parallel_scaling.py
"""

import time

from repro.core import parallel_mincut
from repro.core.noi import noi_mincut
from repro.generators.worlds import WorldSpec, build_instances

spec = WorldSpec(
    "scaling-demo", "chung_lu", 6000, 24.0, (6,), gamma=2.4,
    communities=32, mu=0.6, seed=3, pod_attach=(1, 2),
)
inst = build_instances(spec)[0]
graph = inst.graph
print(f"instance: {inst.name}  n={graph.n} m={graph.m}")

t0 = time.perf_counter()
seq = noi_mincut(graph, pq_kind="heap", bounded=True, rng=0, compute_side=False)
t_seq = time.perf_counter() - t0
print(f"sequential NOIλ̂-Heap: {t_seq:.3f}s, cut={seq.value}\n")

print(f"{'p':>3} {'executor':>10} {'wall':>8} {'modeled_speedup':>16} {'cut':>5}")
for p in (1, 2, 4):
    for executor in ("serial", "processes"):
        t0 = time.perf_counter()
        res = parallel_mincut(
            graph,
            workers=p,
            pq_kind="bqueue",  # the paper's best parallel queue
            executor=executor,
            rng=0,
            compute_side=False,
        )
        wall = time.perf_counter() - t0
        assert res.value == seq.value
        print(f"{p:>3} {executor:>10} {wall:>7.3f}s "
              f"{res.stats.get('modeled_speedup', 1.0):>16.2f} {res.value:>5}")

print("\nThe modeled speedup tracks p (balanced region growth); wall-clock "
      "speedup\nrequires the process executor and large enough instances to "
      "amortize fork\noverheads — exactly the C++-vs-Python substitution "
      "documented in DESIGN.md.")
print("OK")
