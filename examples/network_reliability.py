#!/usr/bin/env python3
"""Network reliability: find the weakest point of a communication network.

The paper's introduction motivates minimum cuts with network reliability
(Karger [16], Ramanathan & Colbourn [30]): assuming equal failure
probability per link, the smallest edge cut is the likeliest way for the
network to disconnect.  This example builds a two-tier "data-center-like"
topology — core routers in a ring, racks hanging off them — finds the
weakest cut, then shows how reinforcing it moves the bottleneck.

Run:  python examples/network_reliability.py
"""

import numpy as np

from repro import GraphBuilder, minimum_cut

RNG = np.random.default_rng(7)

N_CORE = 6
RACKS_PER_CORE = 4
HOSTS_PER_RACK = 3


def build_network(extra_uplinks: list[tuple[int, int, int]] = ()):
    """Core ring (redundant, weight 10) + per-core racks (weight 3 uplinks)
    + hosts (weight 1 links).  Returns (graph, names)."""
    names: list[str] = []

    def new_vertex(name: str) -> int:
        names.append(name)
        return len(names) - 1

    core = [new_vertex(f"core{i}") for i in range(N_CORE)]
    racks = []
    hosts = []
    edges: list[tuple[int, int, int]] = []

    # double core ring: each core router connects to both neighbours
    for i in range(N_CORE):
        edges.append((core[i], core[(i + 1) % N_CORE], 10))
        edges.append((core[i], core[(i + 2) % N_CORE], 5))

    for i in range(N_CORE):
        for r in range(RACKS_PER_CORE):
            rack = new_vertex(f"rack{i}.{r}")
            racks.append(rack)
            edges.append((core[i], rack, 3))  # single uplink: a weak point
            for h in range(HOSTS_PER_RACK):
                host = new_vertex(f"host{i}.{r}.{h}")
                hosts.append(host)
                edges.append((rack, host, 1))
                # hosts also mesh within the rack
                if h:
                    edges.append((host, host - 1, 1))

    edges.extend(extra_uplinks)
    b = GraphBuilder(len(names))
    for u, v, w in edges:
        b.add_edge(u, v, w)
    return b.build(), names


graph, names = build_network()
print(f"network: {graph.n} devices, {graph.m} links")

result = minimum_cut(graph, rng=0)
weak_side = min(result.partition(), key=len)
print(f"\nweakest cut capacity: {result.value}")
print(f"devices isolated by it: {[names[v] for v in weak_side]}")

# A single host with one weight-1 link is the weakest point.  Reinforce all
# host links and re-analyse: the bottleneck moves to the rack uplinks.
reinforced = GraphBuilder(graph.n)
for u, v, w in zip(*graph.edge_arrays()):
    u, v, w = int(u), int(v), int(w)
    reinforced.add_edge(u, v, 4 if w == 1 else w)
g2 = reinforced.build()
r2 = minimum_cut(g2, rng=0)
weak2 = min(r2.partition(), key=len)
print(f"\nafter reinforcing host links: cut = {r2.value}")
print(f"now the likeliest failure isolates: {[names[v] for v in weak2][:6]}")

assert result.value < r2.value, "reinforcement must strictly help"
print("\nOK")
