#!/usr/bin/env python3
"""The paper's instance pipeline: web-like graph → k-core → largest
component → exact minimum cut (Table 1, Appendix A.2).

Generates a power-law graph with planted communities and weakly attached
sub-groups, extracts several k-cores, and reports the same statistics the
paper's Table 1 lists: core size, minimum degree δ, minimum cut λ, and
whether the cut is non-trivial (λ < δ).

Run:  python examples/kcore_pipeline.py
"""

from repro import minimum_cut
from repro.generators import chung_lu
from repro.generators.worlds import WorldSpec, build_world
from repro.graph import core_numbers, k_core_largest_component

# A "social-network-like" base graph: power-law degrees (γ=2.3), 24 planted
# communities, and two hanging dense pods attached by 1 and 2 edges — the
# structures that give real k-cores their non-trivial minimum cuts.
spec = WorldSpec(
    "example-social",
    "chung_lu",
    n=3000,
    avg_degree=24.0,
    ks=(4, 6, 8, 10),
    gamma=2.3,
    communities=24,
    mu=0.6,
    seed=42,
    pod_attach=(1, 2),
)
base = build_world(spec)
cores = core_numbers(base)
print(f"base graph: n={base.n}, m={base.m}, degeneracy={cores.max()}")

print(f"\n{'k':>3} {'core_n':>7} {'core_m':>8} {'delta':>6} {'lambda':>7}  nontrivial")
for k in spec.ks:
    instance, old_ids = k_core_largest_component(base, k)
    if instance.n < 8:
        print(f"{k:>3}  (core too small, skipped)")
        continue
    delta = int(instance.weighted_degrees().min())
    result = minimum_cut(instance, rng=0)
    lam = result.value
    print(
        f"{k:>3} {instance.n:>7} {instance.m:>8} {delta:>6} {lam:>7}  "
        f"{'yes' if lam < delta else 'no'}"
    )
    # the cut side is in core ids; old_ids maps back to the base graph
    small_side = min(result.partition(), key=len)
    base_ids = [int(old_ids[v]) for v in small_side[:5]]
    print(f"     smallest cut side has {len(small_side)} vertices "
          f"(base-graph ids, first 5: {base_ids})")

print("\nOK")
