#!/usr/bin/env python3
"""TSP subtour separation: minimum cuts as a branch-and-cut subroutine.

The paper's introduction cites the Traveling Salesman Problem (Padberg &
Rinaldi [27]): branch-and-cut solves the TSP by repeatedly solving an LP
relaxation and *separating* violated subtour-elimination constraints —
"for every proper vertex subset S, at least two tour edges must cross S".
A fractional LP solution x violates such a constraint exactly when the
graph weighted by x has a minimum cut of capacity < 2: the cut side IS the
violated subset.  Finding it fast is why TSP codes embed exact min-cut
solvers — the use case this library serves.

This example simulates one cutting-plane round: it builds a fractional
"LP support graph" of two regional sub-tours weakly coupled to each other
(the classic structure the subtour constraints forbid), runs the solver,
extracts the violated constraint, "repairs" the solution the way an LP
would respond, and shows the separation oracle then certifies feasibility.

(Weights are scaled to integers — LP solvers emit rationals; a scale of
1000 keeps three decimals, and the threshold 2 becomes 2000.)

Run:  python examples/tsp_separation.py
"""

from repro import GraphBuilder, minimum_cut

SCALE = 1000  # x_e = weight / SCALE
CITIES_PER_REGION = 6


def build_fractional_solution(coupling: float):
    """Two regional sub-tours plus weak inter-region edges of value
    ``coupling`` each (a feasible degree-2 fractional point requires the
    intra-region cycle edges to shed what the coupling adds)."""
    n = 2 * CITIES_PER_REGION
    b = GraphBuilder(n)
    for base in (0, CITIES_PER_REGION):
        for i in range(CITIES_PER_REGION):
            u = base + i
            v = base + (i + 1) % CITIES_PER_REGION
            # cycle edge value 1 - coupling/2 keeps vertex degrees at 2
            b.add_edge(u, v, int(round((1.0 - coupling / 2) * SCALE)))
    # two coupling edges between the regions
    b.add_edge(0, CITIES_PER_REGION, int(round(coupling * SCALE)))
    b.add_edge(CITIES_PER_REGION - 1, 2 * CITIES_PER_REGION - 1, int(round(coupling * SCALE)))
    return b.build()


def separate(graph):
    """The separation oracle: returns a violated subset or None."""
    result = minimum_cut(graph, rng=0)
    if result.value < 2 * SCALE:
        return result
    return None


print("TSP subtour separation (Padberg & Rinaldi [27] use case)\n")

# round 1: weak coupling 0.4 -> the regions form near-subtours
x1 = build_fractional_solution(coupling=0.4)
violation = separate(x1)
assert violation is not None
subset = min(violation.partition(), key=len)
print(f"round 1: min cut = {violation.value / SCALE:.3f} < 2  ->  VIOLATED")
print(f"  violated subtour constraint: x(delta(S)) >= 2 for S = {subset}")
print(f"  (the LP would now add this constraint and re-solve)\n")

# round 2: with the constraint added, the LP converges to an integral
# tour through all cities — x_e = 1 along one Hamiltonian cycle
n = 2 * CITIES_PER_REGION
b = GraphBuilder(n)
for i in range(n):
    b.add_edge(i, (i + 1) % n, SCALE)
x2 = b.build()
violation = separate(x2)
value = minimum_cut(x2, rng=0).value
print(f"round 2: min cut = {value / SCALE:.3f} >= 2  ->  no violated subtour constraint")
assert violation is None

# the oracle is exact: brute-force every subset to confirm round 2 is clean
from repro.core import enumerate_minimum_cuts

lam, sides = enumerate_minimum_cuts(x2)
print(f"  exhaustive check: global minimum cut {lam / SCALE:.3f}, "
      f"{len(sides)} minimum cut(s), none below 2.0")
assert lam >= 2 * SCALE

print("\nOK")
