#!/usr/bin/env python3
"""All-pairs edge connectivity via a Gomory–Hu cut tree.

Gomory & Hu (paper §2.2) showed n-1 max-flow computations suffice to answer
*every* pairwise minimum-cut query — the historical route to global minimum
cuts that NOI and this paper's system replaced for the global problem, but
still the right tool when many pairwise queries are needed.

This example builds a small organization network, constructs the cut tree,
answers pairwise queries in O(tree depth), and cross-checks the lightest
tree edge against the paper's solvers.

Run:  python examples/all_pairs_connectivity.py
"""

from repro import minimum_cut
from repro.baselines import gomory_hu_tree
from repro.generators.worlds import WorldSpec, build_instances

spec = WorldSpec(
    "org-network", "chung_lu", 400, 10.0, (3,), gamma=2.5,
    communities=6, mu=0.7, seed=9, pod_attach=(2,),
)
inst = build_instances(spec)[0]
graph = inst.graph
print(f"network: n={graph.n}, m={graph.m}")

tree = gomory_hu_tree(graph)
print(f"built Gomory–Hu tree with {graph.n - 1} max-flow computations")

# the lightest tree edge is the global minimum cut
value, vertex = tree.global_min_cut()
print(f"\nglobal minimum cut from the tree : {value}")

reference = minimum_cut(graph, rng=0)
print(f"global minimum cut from NOI       : {reference.value}")
assert value == reference.value

# pairwise queries are now tree-path minima — no more flow computations
import itertools

pairs = list(itertools.islice(itertools.combinations(range(graph.n), 2), 6))
print("\nsample pairwise connectivities λ(u, v):")
for u, v in pairs:
    print(f"  λ({u:3d}, {v:3d}) = {tree.min_cut_value(u, v)}")

# connectivity histogram over a sample of pairs: how uniform is the network?
import numpy as np

rng = np.random.default_rng(0)
sample = [
    tree.min_cut_value(int(a), int(b))
    for a, b in rng.integers(0, graph.n, size=(300, 2))
    if a != b
]
values, counts = np.unique(sample, return_counts=True)
print("\npairwise connectivity distribution (300 sampled pairs):")
for val, cnt in zip(values, counts):
    print(f"  λ = {val:3d}: {'#' * max(1, cnt // 4)} ({cnt})")

print("\nOK")
