#!/usr/bin/env python3
"""Quickstart: build a graph, compute its minimum cut, inspect the result.

Run:  python examples/quickstart.py
"""

from repro import GraphBuilder, minimum_cut

# A "dumbbell": two densely connected groups joined by a single weak link.
# Vertices 0-3 form a clique, vertices 4-7 form a clique, and one edge of
# weight 1 bridges them — the minimum cut.
builder = GraphBuilder(8)
for base in (0, 4):
    for i in range(4):
        for j in range(i + 1, 4):
            builder.add_edge(base + i, base + j, w=3)
builder.add_edge(3, 4, w=1)
graph = builder.build()

print(f"graph: {graph}")

# The default algorithm is the paper's fastest sequential configuration:
# VieCut seed + NOI with a bounded heap queue (NOIλ̂-Heap-VieCut).
result = minimum_cut(graph, rng=0)

print(f"minimum cut value : {result.value}")
side_a, side_b = result.partition()
print(f"one side          : {side_a}")
print(f"other side        : {side_b}")
print(f"certified         : {result.verify(graph)}")  # recomputes from scratch
print(f"solved by         : {result.algorithm}")

# Every solver the paper discusses is one keyword away:
for algorithm in ("noi", "noi-hnss", "parcut", "stoer-wagner", "hao-orlin"):
    r = minimum_cut(graph, algorithm=algorithm, rng=0)
    print(f"{algorithm:13s} -> {r.value}")

# Inexact / approximate algorithms give certified upper bounds:
viecut_result = minimum_cut(graph, algorithm="viecut", rng=0)
print(f"viecut (inexact) -> {viecut_result.value} (>= true minimum cut)")

assert result.value == 1
assert sorted(min(result.partition(), key=len)) in ([0, 1, 2, 3], [4, 5, 6, 7])
print("OK")
