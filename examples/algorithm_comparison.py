#!/usr/bin/env python3
"""Race all solvers on one instance — Figure 4 in miniature.

Runs every registered algorithm on the same random hyperbolic graph,
reports time, value, and the operation counts that explain the ranking
(the paper's §4.2 analysis: bounded queues skip hub updates; the VieCut
seed lets CAPFOREST contract far more per round; flow-based HO trails).

Run:  python examples/algorithm_comparison.py
"""

import time

from repro import minimum_cut
from repro.generators import rhg
from repro.graph import largest_component

graph, _ = largest_component(rhg(2048, 24, rng=5))
print(f"instance: RHG  n={graph.n} m={graph.m} "
      f"min_degree={int(graph.weighted_degrees().min())}")

ALGOS = [
    ("noi-viecut", dict()),          # NOIλ̂-Heap-VieCut — the paper's champion
    ("noi", dict(pq_kind="bstack")),  # NOIλ̂-BStack
    ("noi", dict(pq_kind="bqueue")),  # NOIλ̂-BQueue
    ("noi", dict(pq_kind="heap")),    # NOIλ̂-Heap
    ("noi-hnss", dict()),             # unbounded baseline
    ("parcut", dict(workers=4)),      # parallel system (serial executor)
    ("stoer-wagner", dict()),
    ("hao-orlin", dict()),
    ("viecut", dict()),               # inexact
    ("matula", dict(eps=0.5)),        # (2+ε)-approximation
]

rows = []
for name, kwargs in ALGOS:
    t0 = time.perf_counter()
    res = minimum_cut(graph, algorithm=name, rng=0, **kwargs)
    dt = time.perf_counter() - t0
    pq_ops = sum(res.stats.get(k, 0) for k in ("pq_pushes", "pq_updates", "pq_pops"))
    label = res.algorithm
    rows.append((label, dt, res.value, pq_ops))

rows.sort(key=lambda r: r[1])
best = rows[0][1]
print(f"\n{'algorithm':28s} {'time':>9s} {'t/t_best':>9s} {'cut':>5s} {'pq_ops':>9s}")
for label, dt, value, pq_ops in rows:
    print(f"{label:28s} {dt:>8.3f}s {dt / best:>9.2f} {value:>5d} {pq_ops:>9d}")

exact_values = {v for label, _, v, _ in rows
                if not label.startswith(("viecut", "matula"))}
assert len(exact_values) == 1, f"exact solvers disagree: {exact_values}"
print("\nall exact solvers agree; inexact ones are valid upper bounds — OK")
